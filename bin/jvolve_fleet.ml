(* jvolve_fleet: orchestrate a DSU rollout across a load-balanced fleet
   of VM instances running one of the benchmark server apps.

     dune exec bin/jvolve_fleet.exe -- miniweb --from 5.1.1 --to 5.1.2 \
       --size 4
     dune exec bin/jvolve_fleet.exe -- miniweb --from 5.1.4 --to 5.1.5 \
       --size 6 --mode canary --canaries 2 --observe 300
     dune exec bin/jvolve_fleet.exe -- miniweb --from 5.1.2 --to 5.1.3 \
       --size 4 --timeout-rounds 150 --no-confree  # always-on-stack: halts *)

module F = Jv_fleet
module G = Jv_gossip
module J = Jvolve_core

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let print_versions fleet =
  Printf.printf "fleet versions: %s\n"
    (String.concat " "
       (List.map
          (fun (i : F.Instance.t) ->
            Printf.sprintf "%d:%s%s" i.F.Instance.i_id i.F.Instance.i_version
              (match i.F.Instance.i_status with
              | F.Instance.Out_of_service -> "(out)"
              | _ -> ""))
          (F.Fleet.instances fleet)))

let run app_name from_v to_v size mode batch canaries observe drain_timeout
    timeout_rounds probes max_retries backoff_base quarantine admit_strict
    verify_heap transformer_fuel confree guard_rounds guard_budget no_guard
    faults fault_seed concurrency policy gossip fanout quorum supervise
    restart_backoff max_restarts snapshot_every trace metrics verbose =
  match F.Profile.by_name app_name with
  | None ->
      Printf.eprintf "unknown app %S (try: %s)\n" app_name
        (String.concat ", "
           (List.map (fun p -> p.F.Profile.pr_name) F.Profile.all));
      1
  | Some profile -> (
      let check_version v =
        if not (List.mem v (F.Profile.versions profile)) then begin
          Printf.eprintf "unknown %s version %S (have: %s)\n" app_name v
            (String.concat ", " (F.Profile.versions profile));
          exit 1
        end
      in
      check_version from_v;
      check_version to_v;
      let check_positive name v =
        if v < 1 then begin
          Printf.eprintf "--%s must be >= 1 (got %d)\n" name v;
          exit 1
        end
      in
      check_positive "size" size;
      check_positive "batch" batch;
      check_positive "canaries" canaries;
      check_positive "concurrency" concurrency;
      let mode =
        match mode with
        | "rolling" -> F.Orchestrator.Rolling { batch_size = batch }
        | "canary" ->
            F.Orchestrator.Canary
              { canaries; observe_rounds = observe; promote_batch = batch }
        | m ->
            Printf.eprintf "unknown mode %S (rolling|canary)\n" m;
            exit 1
      in
      let guard =
        if no_guard then None
        else
          match J.Guard.budget_of_string guard_budget with
          | Error e ->
              Printf.eprintf "bad --guard-budget: %s\n" e;
              exit 1
          | Ok b ->
              Some
                (J.Guard.config
                   ~budget:{ b with J.Guard.b_rounds = guard_rounds }
                   ())
      in
      let params =
        {
          (F.Orchestrator.default_params mode) with
          F.Orchestrator.drain_timeout;
          update_timeout = timeout_rounds;
          probes_required = probes;
          max_retries;
          backoff_base;
          admit_strict;
          on_exhausted = (if quarantine then `Quarantine else `Halt);
          guard;
        }
      in
      let config =
        {
          F.Instance.default_config with
          Jv_vm.State.verify_heap;
          transformer_fuel;
          confree;
        }
      in
      let plan =
        match faults with
        | None -> None
        | Some p -> (
            match Jv_faults.Faults.parse ~seed:fault_seed p with
            | Ok plan -> Some plan
            | Error e ->
                Printf.eprintf "bad fault plan: %s\n" e;
                exit 1)
      in
      let policy =
        match policy with
        | "rr" -> F.Lb.Round_robin
        | "lc" -> F.Lb.Least_conns
        | p ->
            Printf.eprintf "unknown policy %S (rr|lc)\n" p;
            exit 1
      in
      try
        Printf.printf "booting %d %s instance(s) on %s...\n%!" size app_name
          from_v;
        let fleet =
          F.Fleet.create ~config ~policy ~profile ~version:from_v ~size ()
        in
        F.Fleet.set_faults fleet plan;
        F.Fleet.run fleet ~rounds:30;
        ignore (F.Fleet.attach_load ~concurrency fleet);
        F.Fleet.run fleet ~rounds:120;
        let req0 = F.Fleet.total_requests fleet in
        let sup =
          if supervise then
            Some
              (F.Supervisor.create
                 ~params:
                   {
                     F.Supervisor.default_params with
                     F.Supervisor.s_backoff_base = restart_backoff;
                     s_max_restarts = max_restarts;
                     s_snapshot_every = snapshot_every;
                   }
                 ~fleet ())
          else None
        in
        let print_supervisor () =
          match sup with
          | None -> ()
          | Some sup ->
              Printf.printf
                "supervisor: %d restart(s), %d recovered, %d parked, %d \
                 alive, %d round(s) below capacity\n"
                (F.Supervisor.restarts sup)
                (List.length (F.Supervisor.recovered sup))
                (List.length (F.Supervisor.parked sup))
                (F.Supervisor.alive sup)
                (F.Supervisor.below_capacity_rounds sup)
        in
        if gossip then begin
          (* decentralized path: no orchestrator — a proposal injected
             at node 0 spreads by rumor, every instance applies on its
             own local quorum read, and guard trips fence by vote *)
          Printf.printf
            "gossiping %s -> %s (fanout %d, quorum %.2f, no \
             orchestrator)...\n\
             %!"
            from_v to_v fanout quorum;
          let gparams =
            {
              G.Gossip.default_params with
              G.Gossip.g_fanout = fanout;
              g_quorum = quorum;
              g_drain_timeout = drain_timeout;
              g_update_timeout = timeout_rounds;
              g_max_retries = max_retries;
              g_backoff_base = backoff_base;
              g_seed = fault_seed;
              g_guard = guard;
            }
          in
          let g = G.Gossip.create ?chaos:plan ~params:gparams ~fleet () in
          (match sup with
          | None -> ()
          | Some sup ->
              (* a restarted instance also rebuilds its gossip node and
                 bootstraps its mempool from a peer *)
              F.Supervisor.set_on_restarted sup (fun id ->
                  G.Gossip.rejoin g id));
          ignore (G.Gossip.propose g ~origin:0 ~to_version:to_v);
          let last = ref "" in
          let on_round g =
            (match sup with
            | None -> ()
            | Some sup -> F.Supervisor.step sup);
            if verbose then begin
              let counts = Hashtbl.create 4 in
              for id = 0 to F.Fleet.size fleet - 1 do
                let e = G.Node.epoch (G.Gossip.node g id) in
                Hashtbl.replace counts e
                  (1 + Option.value ~default:0 (Hashtbl.find_opt counts e))
              done;
              let d =
                Hashtbl.fold
                  (fun e n acc -> Printf.sprintf "e%d:%d %s" e n acc)
                  counts ""
              in
              if d <> !last then begin
                last := d;
                Printf.printf "  [%6d] epochs %s\n%!" (F.Fleet.ticks fleet) d
              end
            end
          in
          let rounds = G.Gossip.run g ~on_round ~max_rounds:20_000 () in
          (* let in-flight recoveries finish: the gossip loop may have
             quiesced while a restarted node was still probing *)
          (match sup with
          | None -> ()
          | Some sup ->
              let budget = ref 20_000 in
              while (not (F.Supervisor.settled sup)) && !budget > 0 do
                G.Gossip.step g;
                F.Supervisor.step sup;
                decr budget
              done);
          F.Fleet.run fleet ~rounds:50;
          let served = F.Fleet.total_requests fleet - req0 in
          let dropped = F.Fleet.dropped_in_flight fleet in
          F.Fleet.detach_loads fleet;
          let r = G.Gossip.report g ~rounds in
          Printf.printf "%s\n" (Fmt.str "%a" G.Gossip.pp_report r);
          print_supervisor ();
          Printf.printf
            "connections: %d dropped in flight, %d rejected at the door, %d \
             requests served during the rollout\n"
            dropped
            (F.Lb.rejected (F.Fleet.lb fleet))
            served;
          print_versions fleet;
          if metrics then begin
            let snap = Jv_obs.Obs.create () in
            Jv_obs.Obs.merge_metrics ~into:snap (F.Fleet.obs fleet);
            List.iter
              (fun (i : F.Instance.t) ->
                Jv_obs.Obs.merge_metrics ~into:snap
                  (Jv_vm.Vm.obs i.F.Instance.i_vm))
              (F.Fleet.instances fleet);
            Printf.printf "\n%s" (Jv_obs.Export.prometheus snap)
          end;
          if r.G.Gossip.gr_converged && r.G.Gossip.gr_stuck = [] then 0
          else 2
        end
        else begin
        Printf.printf "rolling out %s -> %s...\n%!" from_v to_v;
        let orch =
          F.Orchestrator.create ~params ~fleet ~to_version:to_v ()
        in
        let last = ref "" in
        let rec drive () =
          match F.Orchestrator.result orch with
          | Some r -> r
          | None ->
              F.Fleet.round fleet;
              F.Orchestrator.step orch;
              (match sup with
              | None -> ()
              | Some sup -> F.Supervisor.step sup);
              (if verbose then
                 let d = F.Orchestrator.describe orch in
                 if d <> !last then begin
                   last := d;
                   Printf.printf "  [%6d] %s\n%!" (F.Fleet.ticks fleet) d
                 end);
              drive ()
        in
        let r = drive () in
        (* let in-flight recoveries finish, then fold supervisor rescues
           into the result: a quarantined-then-readmitted instance moves
           from r_quarantined to r_recovered *)
        let r =
          match sup with
          | None -> r
          | Some sup ->
              let budget = ref 20_000 in
              while (not (F.Supervisor.settled sup)) && !budget > 0 do
                F.Fleet.round fleet;
                F.Supervisor.step sup;
                decr budget
              done;
              F.Orchestrator.reconcile r
                ~recovered:(F.Supervisor.recovered sup)
        in
        F.Fleet.run fleet ~rounds:50;
        let served = F.Fleet.total_requests fleet - req0 in
        let dropped = F.Fleet.dropped_in_flight fleet in
        F.Fleet.detach_loads fleet;
        Printf.printf "%s\n" (Fmt.str "%a" F.Orchestrator.pp_result r);
        print_supervisor ();
        Printf.printf
          "connections: %d dropped in flight, %d rejected at the door, %d \
           requests served during the rollout\n"
          dropped
          (F.Lb.rejected (F.Fleet.lb fleet))
          served;
        print_versions fleet;
        if verbose then
          List.iter
            (fun (id, (ar : J.Jvolve.attempt_report)) ->
              Printf.printf
                "  instance %d: %s after %d attempt(s), %d rounds waited%s\n"
                id
                (J.Jvolve.outcome_to_string ar.J.Jvolve.ar_outcome)
                ar.J.Jvolve.ar_attempts ar.J.Jvolve.ar_waited_rounds
                (if ar.J.Jvolve.ar_blockers = "" then ""
                 else " (blockers: " ^ ar.J.Jvolve.ar_blockers ^ ")"))
            r.F.Orchestrator.r_reports;
        let obs = F.Fleet.obs fleet in
        (match trace with
        | None -> ()
        | Some "" ->
            (* the per-rollout timeline: drain, safe-point update, health
               probes, readmission — with tick durations *)
            Printf.printf "\nrollout timeline:\n%s"
              (Jv_obs.Export.timeline ~scopes:[ "fleet.rollout" ] obs)
        | Some file -> write_file file (Jv_obs.Export.jsonl obs));
        if metrics then begin
          (* fleet-level metrics plus every instance VM's sink, merged *)
          let snap = Jv_obs.Obs.create () in
          Jv_obs.Obs.merge_metrics ~into:snap obs;
          List.iter
            (fun (i : F.Instance.t) ->
              Jv_obs.Obs.merge_metrics ~into:snap
                (Jv_vm.Vm.obs i.F.Instance.i_vm))
            (F.Fleet.instances fleet);
          Printf.printf "\n%s" (Jv_obs.Export.prometheus snap)
        end;
        if r.F.Orchestrator.r_ok then 0 else 2
        end
      with
      | Jv_lang.Compile.Error e ->
          Printf.eprintf "compile error: %s\n" e;
          1
      | J.Transformers.Prepare_error e ->
          Printf.eprintf "prepare error: %s\n" e;
          1)

open Cmdliner

let app_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"APP"
         ~doc:"Server app to run: miniweb, minimail, miniftp or ministore \
               (the stateful KV store whose updates are schema \
               migrations).")

let from_v =
  Arg.(required & opt (some string) None & info [ "from" ] ~docv:"VERSION"
         ~doc:"Version the fleet starts on.")

let to_v =
  Arg.(required & opt (some string) None & info [ "to" ] ~docv:"VERSION"
         ~doc:"Version to roll out.")

let size =
  Arg.(value & opt int 4 & info [ "size" ] ~docv:"N"
         ~doc:"Number of VM instances.")

let mode =
  Arg.(value & opt string "rolling" & info [ "mode" ] ~docv:"MODE"
         ~doc:"Rollout mode: rolling or canary.")

let batch =
  Arg.(value & opt int 1 & info [ "batch" ] ~docv:"N"
         ~doc:"Instances updated per wave (rolling; canary promotion).")

let canaries =
  Arg.(value & opt int 1 & info [ "canaries" ] ~docv:"N"
         ~doc:"Canary instances updated first (canary mode).")

let observe =
  Arg.(value & opt int 300 & info [ "observe" ] ~docv:"ROUNDS"
         ~doc:"Canary observation window in fleet rounds.")

let drain_timeout =
  Arg.(value & opt int 300 & info [ "drain-timeout" ] ~docv:"ROUNDS"
         ~doc:"Rounds to wait for in-flight connections before updating \
               anyway.")

let timeout_rounds =
  Arg.(value & opt int 400 & info [ "timeout-rounds" ] ~docv:"N"
         ~doc:"Per-instance update abort budget in scheduler rounds (the \
               paper's 15s abort timeout).")

let probes =
  Arg.(value & opt int 2 & info [ "probes" ] ~docv:"N"
         ~doc:"Consecutive healthy probes required before readmission.")

let max_retries =
  Arg.(value & opt int 0 & info [ "max-retries" ] ~docv:"N"
         ~doc:"Re-attempt a cleanly-aborted per-instance update up to \
               $(docv) times, with exponential backoff.")

let backoff_base =
  Arg.(value & opt int 40 & info [ "backoff-base" ] ~docv:"ROUNDS"
         ~doc:"Backoff before the first retry; doubles per attempt.")

let quarantine =
  Arg.(value & flag & info [ "quarantine" ]
         ~doc:"When an instance exhausts its retries, quarantine it and \
               finish the rollout on the survivors instead of halting \
               and rolling everything back.")

let admit_strict =
  Arg.(value & flag & info [ "admit-strict" ]
         ~doc:"Promote admission-control warnings (e.g. a field silently \
               changing type across the update) to rejections.")

let verify_heap =
  Arg.(value & flag & info [ "verify-heap" ]
         ~doc:"On every instance, walk the whole heap after each update's \
               transform phase (and after any rollback); a failed \
               post-rollback verify quarantines the instance.")

let transformer_fuel =
  Arg.(value & opt int Jv_vm.State.default_config.Jv_vm.State.transformer_fuel
         & info [ "transformer-fuel" ] ~docv:"N"
             ~doc:"Machine-instruction budget per transformer invocation.")

let confree =
  Arg.(
    value
    & vflag true
        [
          ( true,
            info [ "confree" ]
              ~doc:
                "Run the static con-freeness analysis on every instance: \
                 changed methods proven backward-compatible stop blocking \
                 the per-instance safe point (default)." );
          ( false,
            info [ "no-confree" ]
              ~doc:
                "Disable the con-freeness analysis on every instance: \
                 every changed method blocks its safe point wherever it \
                 is on stack." );
        ])

let guard_rounds =
  Arg.(value & opt int J.Guard.default_budget.J.Guard.b_rounds
         & info [ "guard-rounds" ] ~docv:"N"
             ~doc:"Post-commit guard window per instance, in scheduler \
                   rounds: each committed update is watched against its \
                   pre-update baselines and auto-reverted in-VM if the \
                   error budget trips; a trip also fences the rollout and \
                   reverts every already-updated instance.")

let guard_budget =
  Arg.(value & opt string "" & info [ "guard-budget" ] ~docv:"SPEC"
         ~doc:"Guard error budget, comma-separated key=value pairs: \
               rounds, traps, errors, probes, latency (factor), samples. \
               Unset keys keep their defaults.")

let no_guard =
  Arg.(value & flag & info [ "no-guard" ]
         ~doc:"Commit per-instance updates immediately: no guard windows, \
               no fleet-wide fenced revert.")

let faults =
  Arg.(value & opt (some string) None & info [ "faults" ] ~docv:"PLAN"
         ~doc:"Arm a deterministic fault plan on every instance VM and \
               its network: comma-separated POINT=ACTION[@RATE][xCOUNT] \
               rules, e.g. 'updater.transform=raise\\@0.2', \
               'net.link=drop\\@0.05', 'updater.gc=kill x1'.  Actions: \
               raise, kill, drop, delay:N.  A trailing * in POINT \
               matches by prefix.")

let fault_seed =
  Arg.(value & opt int 42 & info [ "fault-seed" ] ~docv:"N"
         ~doc:"Seed for the fault plan's RNG (same seed, same schedule).")

let concurrency =
  Arg.(value & opt int 8 & info [ "concurrency" ] ~docv:"N"
         ~doc:"Concurrent scripted client sessions against the balancer.")

let policy =
  Arg.(value & opt string "rr" & info [ "policy" ] ~docv:"POLICY"
         ~doc:"Load-balancing policy: rr (round-robin) or lc \
               (least-connections).")

let gossip =
  Arg.(value & flag & info [ "gossip" ]
         ~doc:"Roll out with the decentralized gossip control plane \
               instead of the orchestrator: the proposal spreads by \
               rumor and anti-entropy, every instance applies on its \
               own local quorum read, and a guard trip fences the \
               rollout by trip-vote quorum with a peer-to-peer \
               inverse-spec wave.")

let fanout =
  Arg.(value & opt int G.Gossip.default_params.G.Gossip.g_fanout
         & info [ "fanout" ] ~docv:"K"
             ~doc:"Gossip: random peers each hot rumor is pushed to per \
                   round.")

let quorum =
  Arg.(value & opt float G.Gossip.default_params.G.Gossip.g_quorum
         & info [ "quorum" ] ~docv:"Q"
             ~doc:"Gossip: apply once ceil($(docv) * size) positive \
                   votes are in the local mempool.")

let supervise =
  Arg.(value & flag & info [ "supervise" ]
         ~doc:"Run the self-healing supervisor alongside the rollout: \
               crashed (or quarantined) instances are restarted with \
               exponential backoff, restored from their latest state \
               snapshot, caught up through every missed version hop via \
               the normal update pipeline, and readmitted only after \
               health probes pass.  Crash-looping instances are parked \
               after --max-restarts attempts.")

let restart_backoff =
  Arg.(value & opt int F.Supervisor.default_params.F.Supervisor.s_backoff_base
         & info [ "restart-backoff" ] ~docv:"ROUNDS"
             ~doc:"Supervisor: rounds before the first restart attempt; \
                   doubles per consecutive crash.")

let max_restarts =
  Arg.(value & opt int F.Supervisor.default_params.F.Supervisor.s_max_restarts
         & info [ "max-restarts" ] ~docv:"N"
             ~doc:"Supervisor: restart attempts per instance before it is \
                   parked permanently as crash-looping.")

let snapshot_every =
  Arg.(value
         & opt int F.Supervisor.default_params.F.Supervisor.s_snapshot_every
         & info [ "snapshot-every" ] ~docv:"ROUNDS"
             ~doc:"Supervisor: rounds between state snapshots of stateful \
                   apps (ministore); a restarted instance replays its \
                   latest snapshot before catching up.  0 disables \
                   snapshots.")

let trace =
  Arg.(value & opt ~vopt:(Some "") (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Print the per-rollout timeline (drain, safe-point \
                   update, health probes, readmission) after the rollout; \
                   with $(docv), write the full JSON-lines event dump \
                   there instead.")

let metrics =
  Arg.(value & flag & info [ "metrics" ]
         ~doc:"Print a Prometheus-style snapshot merging the fleet's and \
               every instance VM's metrics.")

let verbose =
  Arg.(value & flag & info [ "v"; "verbose" ]
         ~doc:"Trace rollout phases and per-instance attempt reports.")

let cmd =
  Cmd.v
    (Cmd.info "jvolve_fleet"
       ~doc:"Rolling and canary DSU rollouts across a multi-VM fleet")
    Term.(
      const run $ app_arg $ from_v $ to_v $ size $ mode $ batch $ canaries
      $ observe $ drain_timeout $ timeout_rounds $ probes $ max_retries
      $ backoff_base $ quarantine $ admit_strict $ verify_heap
      $ transformer_fuel $ confree $ guard_rounds $ guard_budget $ no_guard
      $ faults $ fault_seed $ concurrency $ policy $ gossip $ fanout $ quorum
      $ supervise $ restart_backoff $ max_restarts $ snapshot_every $ trace
      $ metrics $ verbose)

let () = exit (Cmd.eval' cmd)
