(* jvolve_run: run a MiniJava program on the VM, optionally applying a
   dynamic update while it executes.

     dune exec bin/jvolve_run.exe -- program.mj
     dune exec bin/jvolve_run.exe -- v1.mj --update v2.mj --at 50 --tag 2 \
       --transformers custom.mj --rounds 500 *)

module VM = Jv_vm
module J = Jvolve_core

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

(* --trace          -> human-readable update/GC/OSR timeline on stderr
   --trace=FILE     -> full JSONL event dump to FILE *)
let emit_trace obs = function
  | None -> ()
  | Some "" ->
      prerr_string
        (Jv_obs.Export.timeline
           ~scopes:[ "core.update"; "vm.gc"; "vm.osr"; "vm.dsu" ]
           obs)
  | Some file -> write_file file (Jv_obs.Export.jsonl obs)

let run path main_class rounds update_path at tag transformers_path
    timeout_rounds admit_strict verify_heap transformer_fuel guard_rounds
    guard_budget no_guard faults fault_seed trace metrics verbose =
  try
    let plan =
      match faults with
      | None -> None
      | Some p -> (
          match Jv_faults.Faults.parse ~seed:fault_seed p with
          | Ok plan -> Some plan
          | Error e ->
              Printf.eprintf "bad fault plan: %s\n" e;
              exit 1)
    in
    let guard =
      if no_guard then None
      else
        match J.Guard.budget_of_string guard_budget with
        | Error e ->
            Printf.eprintf "bad --guard-budget: %s\n" e;
            exit 1
        | Ok b ->
            Some
              (J.Guard.config
                 ~budget:{ b with J.Guard.b_rounds = guard_rounds }
                 ())
    in
    let old_program = Jv_lang.Compile.compile_program (read_file path) in
    let config =
      { VM.State.default_config with VM.State.verify_heap; transformer_fuel }
    in
    let vm = VM.Vm.create ~config () in
    VM.Vm.set_faults vm plan;
    VM.Vm.boot vm old_program;
    ignore (VM.Vm.spawn_main vm ~main_class);
    (match update_path with
    | None -> ignore (VM.Vm.run_to_quiescence ~max_rounds:rounds vm)
    | Some upath ->
        VM.Vm.run vm ~rounds:at;
        let new_program = Jv_lang.Compile.compile_program (read_file upath) in
        let transformer_src = Option.map read_file transformers_path in
        let spec =
          J.Spec.make ~transformer_src ~version_tag:tag ~old_program
            ~new_program ()
        in
        let h =
          J.Jvolve.update_now ~timeout_rounds ~admit_strict ?guard vm spec
        in
        Printf.eprintf "[jvolve] update at round %d: %s\n" at
          (J.Jvolve.outcome_to_string h.J.Jvolve.h_outcome);
        (match guard with
        | Some _ when J.Jvolve.succeeded h ->
            let final = J.Jvolve.run_to_guard_close vm h in
            Printf.eprintf "[jvolve] guard window: %s\n"
              (match final with
              | J.Jvolve.Applied _ -> "closed clean (update kept)"
              | o -> J.Jvolve.outcome_to_string o)
        | _ -> ());
        (match VM.Vm.killed vm with
        | Some pt -> Printf.eprintf "[jvolve] VM killed at %s\n" pt
        | None -> ());
        ignore (VM.Vm.run_to_quiescence ~max_rounds:(max 0 (rounds - at)) vm));
    print_string (VM.Vm.output vm);
    emit_trace (VM.Vm.obs vm) trace;
    if metrics then print_string (Jv_obs.Export.prometheus (VM.Vm.obs vm));
    let stats = VM.Vm.stats vm in
    if verbose then begin
      Printf.eprintf
        "[jvolve] %d instructions, %d base compiles, %d opt compiles, %d \
         GCs, %d OSRs\n"
        stats.VM.Vm.instr_count stats.VM.Vm.compile_count
        stats.VM.Vm.opt_compile_count stats.VM.Vm.gc_count stats.VM.Vm.osr_count;
      List.iter
        (fun (tid, msg) -> Printf.eprintf "[jvolve] thread %d trapped: %s\n" tid msg)
        stats.VM.Vm.traps
    end;
    if stats.VM.Vm.traps = [] then 0 else 2
  with
  | Jv_lang.Compile.Error e ->
      Printf.eprintf "compile error: %s\n" e;
      1
  | VM.Classloader.Load_error errs ->
      Printf.eprintf "load error:\n  %s\n" (String.concat "\n  " errs);
      1
  | J.Transformers.Prepare_error e ->
      Printf.eprintf "prepare error: %s\n" e;
      1

open Cmdliner

let path =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
         ~doc:"MiniJava program.")

let main_class =
  Arg.(value & opt string "Main" & info [ "main" ] ~docv:"CLASS"
         ~doc:"Class whose static main() to run.")

let rounds =
  Arg.(value & opt int 100_000 & info [ "rounds" ] ~docv:"N"
         ~doc:"Maximum scheduler rounds.")

let update_path =
  Arg.(value & opt (some file) None & info [ "update" ] ~docv:"FILE"
         ~doc:"New program version to apply dynamically.")

let at =
  Arg.(value & opt int 50 & info [ "at" ] ~docv:"ROUND"
         ~doc:"Round at which to request the update.")

let tag =
  Arg.(value & opt string "1" & info [ "tag" ] ~docv:"TAG"
         ~doc:"Version tag for renamed old classes.")

let transformers_path =
  Arg.(value & opt (some file) None & info [ "transformers" ] ~docv:"FILE"
         ~doc:"Customized JvolveTransformers source (default: generated).")

let timeout_rounds =
  Arg.(value & opt int Jvolve_core.Jvolve.default_timeout_rounds
         & info [ "timeout-rounds" ] ~docv:"N"
             ~doc:"Abort the update if no safe point is reached within $(docv) \
                   scheduler rounds (the paper's 15s abort timeout).")

let admit_strict =
  Arg.(value & flag & info [ "admit-strict" ]
         ~doc:"Promote admission-control warnings (e.g. a field silently \
               changing type across the update) to rejections.")

let verify_heap =
  Arg.(value & flag & info [ "verify-heap" ]
         ~doc:"Walk the whole heap after the transform phase (and after \
               any rollback) checking headers, reference-field types and \
               statics; a failed verify aborts the update.")

let transformer_fuel =
  Arg.(value & opt int VM.State.default_config.VM.State.transformer_fuel
         & info [ "transformer-fuel" ] ~docv:"N"
             ~doc:"Machine-instruction budget per transformer invocation; \
                   a transformer that exceeds it traps and the update \
                   aborts.")

let guard_rounds =
  Arg.(value & opt int J.Guard.default_budget.J.Guard.b_rounds
         & info [ "guard-rounds" ] ~docv:"N"
             ~doc:"Length of the post-commit guard window in scheduler \
                   rounds: after a successful update the VM watches trap \
                   rate, app errors, probe failures and p99 latency \
                   against pre-update baselines, auto-reverting (inverse \
                   update, replaying the retained update log) if a budget \
                   trips.")

let guard_budget =
  Arg.(value & opt string "" & info [ "guard-budget" ] ~docv:"SPEC"
         ~doc:"Guard error budget, comma-separated key=value pairs: \
               rounds, traps, errors, probes, latency (factor), samples. \
               E.g. 'traps=0,errors=2,latency=3'.  Unset keys keep their \
               defaults.")

let no_guard =
  Arg.(value & flag & info [ "no-guard" ]
         ~doc:"Commit updates immediately: no guard window, no retained \
               update log, no automatic revert.")

let faults =
  Arg.(value & opt (some string) None & info [ "faults" ] ~docv:"PLAN"
         ~doc:"Arm a deterministic fault plan: comma-separated \
               POINT=ACTION[@RATE][xCOUNT] rules, e.g. \
               'updater.transform=raise', 'updater.*=raise\\@0.2', \
               'net.link=delay:3\\@0.1x5'.  Actions: raise, kill, drop, \
               delay:N.  A trailing * in POINT matches by prefix.")

let fault_seed =
  Arg.(value & opt int 42 & info [ "fault-seed" ] ~docv:"N"
         ~doc:"Seed for the fault plan's RNG (same seed, same schedule).")

let trace =
  Arg.(value & opt ~vopt:(Some "") (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Print the update/GC/OSR flight-recorder timeline on \
                   stderr; with $(docv), write the full JSON-lines event \
                   dump there instead.")

let metrics =
  Arg.(value & flag & info [ "metrics" ]
         ~doc:"Print a Prometheus-style snapshot of the VM's metrics.")

let verbose =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print VM statistics.")

let cmd =
  Cmd.v
    (Cmd.info "jvolve_run" ~doc:"Run MiniJava programs with dynamic updates")
    Term.(
      const run $ path $ main_class $ rounds $ update_path $ at $ tag
      $ transformers_path $ timeout_rounds $ admit_strict $ verify_heap
      $ transformer_fuel $ guard_rounds $ guard_budget $ no_guard $ faults
      $ fault_seed $ trace $ metrics $ verbose)

let () = exit (Cmd.eval' cmd)
