(* jvolve_run: run a MiniJava program on the VM, optionally applying a
   dynamic update while it executes.

     dune exec bin/jvolve_run.exe -- program.mj
     dune exec bin/jvolve_run.exe -- v1.mj --update v2.mj --at 50 --tag 2 \
       --transformers custom.mj --rounds 500

   Or run a built-in server app's version ladder under load, applying
   every release in [--from, --to] as a dynamic update (with the app's
   own custom transformers, e.g. ministore's schema migrations):

     dune exec bin/jvolve_run.exe -- --app ministore --from 1.0 --to 1.3 *)

module VM = Jv_vm
module J = Jvolve_core
module A = Jv_apps

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

(* --trace          -> human-readable update/GC/OSR timeline on stderr
   --trace=FILE     -> full JSONL event dump to FILE *)
let emit_trace obs = function
  | None -> ()
  | Some "" ->
      prerr_string
        (Jv_obs.Export.timeline
           ~scopes:[ "core.update"; "vm.gc"; "vm.osr"; "vm.dsu" ]
           obs)
  | Some file -> write_file file (Jv_obs.Export.jsonl obs)

(* Common tail: program output, trace/metrics export, stats, exit code. *)
let finish vm ~trace ~metrics ~verbose ~failed =
  print_string (VM.Vm.output vm);
  emit_trace (VM.Vm.obs vm) trace;
  if metrics then print_string (Jv_obs.Export.prometheus (VM.Vm.obs vm));
  let stats = VM.Vm.stats vm in
  if verbose then begin
    Printf.eprintf
      "[jvolve] %d instructions, %d base compiles, %d opt compiles, %d \
       GCs, %d OSRs\n"
      stats.VM.Vm.instr_count stats.VM.Vm.compile_count
      stats.VM.Vm.opt_compile_count stats.VM.Vm.gc_count
      stats.VM.Vm.osr_count;
    List.iter
      (fun (tid, msg) ->
        Printf.eprintf "[jvolve] thread %d trapped: %s\n" tid msg)
      stats.VM.Vm.traps
  end;
  if stats.VM.Vm.traps = [] && not failed then 0 else 2

(* --app mode: boot a built-in server app under load and walk its
   version ladder from --from to --to, one dynamic update per release,
   using the app's own transformer overrides (ministore's rungs are all
   schema migrations with custom forward and inverse transformers). *)
let run_app_ladder ~app_name ~from_v ~to_v ~config ~plan ~guard
    ~timeout_rounds ~admit_strict ~trace ~metrics ~verbose =
  let lazy_mode = config.VM.State.lazy_update in
  let d =
    match
      List.find_opt
        (fun (d : A.Experience.app_desc) -> d.A.Experience.d_name = app_name)
        A.Experience.all_apps
    with
    | Some d -> d
    | None ->
        Printf.eprintf "unknown app %s (have: %s)\n" app_name
          (String.concat ", "
             (List.map
                (fun (d : A.Experience.app_desc) -> d.A.Experience.d_name)
                A.Experience.all_apps));
        exit 1
  in
  let versions = List.map fst d.A.Experience.d_versioned.A.Patching.versions in
  let index_of v =
    let rec go i = function
      | [] -> None
      | x :: _ when x = v -> Some i
      | _ :: r -> go (i + 1) r
    in
    go 0 versions
  in
  let from_v = Option.value from_v ~default:(List.hd versions) in
  let to_v =
    Option.value to_v ~default:(List.nth versions (List.length versions - 1))
  in
  let rungs =
    match (index_of from_v, index_of to_v) with
    | Some i, Some j when i < j ->
        List.init (j - i) (fun k ->
            (List.nth versions (i + k), List.nth versions (i + k + 1)))
    | _ ->
        Printf.eprintf "no ladder from %s to %s (versions: %s)\n" from_v to_v
          (String.concat ", " versions);
        exit 1
  in
  let vm = A.Experience.boot_version ~config d ~version:from_v in
  VM.Vm.set_faults vm plan;
  let loads = A.Experience.attach_loads vm d ~concurrency:4 in
  VM.Vm.run vm ~rounds:60;
  let compile v =
    Jv_lang.Compile.compile_program
      (A.Patching.source d.A.Experience.d_versioned ~version:v)
  in
  let failures = ref 0 in
  List.iter
    (fun (f, t) ->
      let before = A.Experience.total_requests loads in
      let spec =
        A.Common.spec
          ~overrides:(d.A.Experience.d_overrides ~to_version:t)
          ~version_tag:(A.Common.version_tag f)
          ~old_program:(compile f) ~new_program:(compile t) ()
      in
      let h =
        J.Jvolve.update_now ~timeout_rounds ~admit_strict ?guard vm spec
      in
      Printf.eprintf "[jvolve] %s %s -> %s: %s\n" app_name f t
        (J.Jvolve.outcome_to_string h.J.Jvolve.h_outcome);
      if not (J.Jvolve.succeeded h) then incr failures
      else
        Option.iter
          (fun _ ->
            match J.Jvolve.run_to_guard_close vm h with
            | J.Jvolve.Applied _ ->
                Printf.eprintf
                  "[jvolve]   guard window closed clean (update kept)\n"
            | o ->
                incr failures;
                Printf.eprintf "[jvolve]   guard window: %s\n"
                  (J.Jvolve.outcome_to_string o))
          guard;
      VM.Vm.run vm ~rounds:80;
      (match vm.VM.State.lazy_info with
      | Some li ->
          Printf.eprintf
            "[jvolve]   lazy window open: %d object(s) migrated so far (%d \
             by barrier, %d by sweeper)\n"
            li.VM.State.li_transformed li.VM.State.li_barrier_hits
            li.VM.State.li_swept
      | None ->
          if lazy_mode then
            Printf.eprintf "[jvolve]   lazy window drained\n");
      (* collect first: the committed update's dropped log leaves
         superseded old copies in the heap until the next collection *)
      ignore (VM.Gc.collect vm : VM.Gc.result);
      let hv = VM.Heapverify.run vm in
      if not hv.VM.Heapverify.hv_ok then incr failures;
      Printf.eprintf "[jvolve]   served %d request(s) during the rung; heap %s\n"
        (A.Experience.total_requests loads - before)
        (if hv.VM.Heapverify.hv_ok then "green" else "DIRTY"))
    rungs;
  VM.Vm.run vm ~rounds:60;
  Printf.eprintf
    "[jvolve] ladder complete: %d rung(s), %d failure(s), %d requests served\n"
    (List.length rungs) !failures
    (A.Experience.total_requests loads);
  finish vm ~trace ~metrics ~verbose ~failed:(!failures > 0)

let run app from_v to_v path main_class rounds update_path at tag
    transformers_path timeout_rounds admit_strict verify_heap
    transformer_fuel lazy_update lazy_sweep_budget confree guard_rounds
    guard_budget no_guard faults fault_seed trace metrics verbose =
  try
    let plan =
      match faults with
      | None -> None
      | Some p -> (
          match Jv_faults.Faults.parse ~seed:fault_seed p with
          | Ok plan -> Some plan
          | Error e ->
              Printf.eprintf "bad fault plan: %s\n" e;
              exit 1)
    in
    let guard =
      if no_guard then None
      else
        match J.Guard.budget_of_string guard_budget with
        | Error e ->
            Printf.eprintf "bad --guard-budget: %s\n" e;
            exit 1
        | Ok b ->
            Some
              (J.Guard.config
                 ~budget:{ b with J.Guard.b_rounds = guard_rounds }
                 ())
    in
    match app with
    | Some app_name ->
        run_app_ladder ~app_name ~from_v ~to_v
          ~config:
            {
              A.Experience.default_config with
              VM.State.verify_heap;
              transformer_fuel;
              lazy_update;
              lazy_sweep_budget;
              confree;
            }
          ~plan ~guard ~timeout_rounds ~admit_strict ~trace ~metrics ~verbose
    | None ->
    let path =
      match path with
      | Some p -> p
      | None ->
          Printf.eprintf "either FILE or --app is required\n";
          exit 1
    in
    let old_program = Jv_lang.Compile.compile_program (read_file path) in
    let config =
      {
        VM.State.default_config with
        VM.State.verify_heap;
        transformer_fuel;
        lazy_update;
        lazy_sweep_budget;
        confree;
      }
    in
    let vm = VM.Vm.create ~config () in
    VM.Vm.set_faults vm plan;
    VM.Vm.boot vm old_program;
    ignore (VM.Vm.spawn_main vm ~main_class);
    (match update_path with
    | None -> ignore (VM.Vm.run_to_quiescence ~max_rounds:rounds vm)
    | Some upath ->
        VM.Vm.run vm ~rounds:at;
        let new_program = Jv_lang.Compile.compile_program (read_file upath) in
        let transformer_src = Option.map read_file transformers_path in
        let spec =
          J.Spec.make ~transformer_src ~version_tag:tag ~old_program
            ~new_program ()
        in
        let h =
          J.Jvolve.update_now ~timeout_rounds ~admit_strict ?guard vm spec
        in
        Printf.eprintf "[jvolve] update at round %d: %s\n" at
          (J.Jvolve.outcome_to_string h.J.Jvolve.h_outcome);
        (match guard with
        | Some _ when J.Jvolve.succeeded h ->
            let final = J.Jvolve.run_to_guard_close vm h in
            Printf.eprintf "[jvolve] guard window: %s\n"
              (match final with
              | J.Jvolve.Applied _ -> "closed clean (update kept)"
              | o -> J.Jvolve.outcome_to_string o)
        | _ -> ());
        (match VM.Vm.killed vm with
        | Some pt -> Printf.eprintf "[jvolve] VM killed at %s\n" pt
        | None -> ());
        ignore (VM.Vm.run_to_quiescence ~max_rounds:(max 0 (rounds - at)) vm));
    finish vm ~trace ~metrics ~verbose ~failed:false
  with
  | Jv_lang.Compile.Error e ->
      Printf.eprintf "compile error: %s\n" e;
      1
  | VM.Classloader.Load_error errs ->
      Printf.eprintf "load error:\n  %s\n" (String.concat "\n  " errs);
      1
  | J.Transformers.Prepare_error e ->
      Printf.eprintf "prepare error: %s\n" e;
      1

open Cmdliner

let path =
  Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE"
         ~doc:"MiniJava program (omit when using --app).")

let app_arg =
  Arg.(value & opt (some string) None & info [ "app" ] ~docv:"APP"
         ~doc:"Walk a built-in server app's version ladder under load \
               instead of running a file: miniweb, minimail, miniftp or \
               ministore.  Each release in [--from, --to] is applied as \
               a dynamic update with the app's own transformers.")

let from_v =
  Arg.(value & opt (some string) None & info [ "from" ] ~docv:"VERSION"
         ~doc:"With --app: version to boot (default: the app's first).")

let to_v =
  Arg.(value & opt (some string) None & info [ "to" ] ~docv:"VERSION"
         ~doc:"With --app: version to end on (default: the app's last).")

let main_class =
  Arg.(value & opt string "Main" & info [ "main" ] ~docv:"CLASS"
         ~doc:"Class whose static main() to run.")

let rounds =
  Arg.(value & opt int 100_000 & info [ "rounds" ] ~docv:"N"
         ~doc:"Maximum scheduler rounds.")

let update_path =
  Arg.(value & opt (some file) None & info [ "update" ] ~docv:"FILE"
         ~doc:"New program version to apply dynamically.")

let at =
  Arg.(value & opt int 50 & info [ "at" ] ~docv:"ROUND"
         ~doc:"Round at which to request the update.")

let tag =
  Arg.(value & opt string "1" & info [ "tag" ] ~docv:"TAG"
         ~doc:"Version tag for renamed old classes.")

let transformers_path =
  Arg.(value & opt (some file) None & info [ "transformers" ] ~docv:"FILE"
         ~doc:"Customized JvolveTransformers source (default: generated).")

let timeout_rounds =
  Arg.(value & opt int Jvolve_core.Jvolve.default_timeout_rounds
         & info [ "timeout-rounds" ] ~docv:"N"
             ~doc:"Abort the update if no safe point is reached within $(docv) \
                   scheduler rounds (the paper's 15s abort timeout).")

let admit_strict =
  Arg.(value & flag & info [ "admit-strict" ]
         ~doc:"Promote admission-control warnings (e.g. a field silently \
               changing type across the update) to rejections.")

let verify_heap =
  Arg.(value & flag & info [ "verify-heap" ]
         ~doc:"Walk the whole heap after the transform phase (and after \
               any rollback) checking headers, reference-field types and \
               statics; a failed verify aborts the update.")

let transformer_fuel =
  Arg.(value & opt int VM.State.default_config.VM.State.transformer_fuel
         & info [ "transformer-fuel" ] ~docv:"N"
             ~doc:"Machine-instruction budget per transformer invocation; \
                   a transformer that exceeds it traps and the update \
                   aborts.")

let lazy_update =
  Arg.(value & flag & info [ "lazy" ]
         ~doc:"Commit updates lazily: the pause covers only metadata, \
               statics and a heap-epoch flip.  Old-epoch objects are \
               transformed on first access by a read barrier, and a \
               background sweeper migrates a bounded number of objects \
               per scheduler round until the heap converges.")

let lazy_sweep_budget =
  Arg.(value & opt int VM.State.default_config.VM.State.lazy_sweep_budget
         & info [ "lazy-budget" ] ~docv:"N"
             ~doc:"With --lazy: heap objects the background sweeper visits \
                   per scheduler round.")

let confree =
  Arg.(
    value
    & vflag true
        [
          ( true,
            info [ "confree" ]
              ~doc:
                "Run the static con-freeness (backward-compatibility) \
                 analysis at admission time: changed methods whose old \
                 bodies are proven safe to keep running across the commit \
                 are subtracted from the restricted set, so always-on-stack \
                 run() loops no longer block the safe point.  This is the \
                 default." );
          ( false,
            info [ "no-confree" ]
              ~doc:
                "Disable the con-freeness analysis: every changed method \
                 blocks the safe point wherever it is on stack (the \
                 paper's baseline behaviour)." );
        ])

let guard_rounds =
  Arg.(value & opt int J.Guard.default_budget.J.Guard.b_rounds
         & info [ "guard-rounds" ] ~docv:"N"
             ~doc:"Length of the post-commit guard window in scheduler \
                   rounds: after a successful update the VM watches trap \
                   rate, app errors, probe failures and p99 latency \
                   against pre-update baselines, auto-reverting (inverse \
                   update, replaying the retained update log) if a budget \
                   trips.")

let guard_budget =
  Arg.(value & opt string "" & info [ "guard-budget" ] ~docv:"SPEC"
         ~doc:"Guard error budget, comma-separated key=value pairs: \
               rounds, traps, errors, probes, latency (factor), samples. \
               E.g. 'traps=0,errors=2,latency=3'.  Unset keys keep their \
               defaults.")

let no_guard =
  Arg.(value & flag & info [ "no-guard" ]
         ~doc:"Commit updates immediately: no guard window, no retained \
               update log, no automatic revert.")

let faults =
  Arg.(value & opt (some string) None & info [ "faults" ] ~docv:"PLAN"
         ~doc:"Arm a deterministic fault plan: comma-separated \
               POINT=ACTION[@RATE][xCOUNT] rules, e.g. \
               'updater.transform=raise', 'updater.*=raise\\@0.2', \
               'net.link=delay:3\\@0.1x5'.  Actions: raise, kill, drop, \
               delay:N.  A trailing * in POINT matches by prefix.")

let fault_seed =
  Arg.(value & opt int 42 & info [ "fault-seed" ] ~docv:"N"
         ~doc:"Seed for the fault plan's RNG (same seed, same schedule).")

let trace =
  Arg.(value & opt ~vopt:(Some "") (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Print the update/GC/OSR flight-recorder timeline on \
                   stderr; with $(docv), write the full JSON-lines event \
                   dump there instead.")

let metrics =
  Arg.(value & flag & info [ "metrics" ]
         ~doc:"Print a Prometheus-style snapshot of the VM's metrics.")

let verbose =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print VM statistics.")

let cmd =
  Cmd.v
    (Cmd.info "jvolve_run" ~doc:"Run MiniJava programs with dynamic updates")
    Term.(
      const run $ app_arg $ from_v $ to_v $ path $ main_class $ rounds
      $ update_path $ at $ tag $ transformers_path $ timeout_rounds
      $ admit_strict $ verify_heap $ transformer_fuel $ lazy_update
      $ lazy_sweep_budget $ confree $ guard_rounds $ guard_budget $ no_guard
      $ faults $ fault_seed $ trace $ metrics $ verbose)

let () = exit (Cmd.eval' cmd)
