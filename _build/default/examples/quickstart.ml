(* Quickstart: compile a MiniJava program, run it on the VM, and apply a
   dynamic software update while it runs.

     dune exec examples/quickstart.exe

   This walks the whole Jvolve pipeline from the paper's Figure 1:
   compile old and new versions, let the UPT diff them and generate
   default transformers, signal the running VM, and watch the behaviour
   change mid-execution with no restart. *)

module VM = Jv_vm
module J = Jvolve_core

(* Version 1: a counter service that doubles. *)
let v1 =
  {|
class Counter {
  int value;
  int step(int n) { return n * 2; }
  void tick() { value = step(value + 1); }
}
class Main {
  static void main() {
    Counter c = new Counter();
    for (int i = 0; i < 12; i = i + 1) {
      c.tick();
      Sys.println("counter = " + c.value);
      Thread.yieldNow();
    }
  }
}
|}

(* Version 2: [step] now triples, and [Counter] gains a [ticks] field
   counting invocations — a class update (field addition), not just a
   method-body change, so the heap object must be transformed. *)
let v2 =
  {|
class Counter {
  int value;
  int ticks;
  int step(int n) { return n * 3; }
  void tick() { value = step(value + 1); ticks = ticks + 1; }
}
class Main {
  static void main() {
    Counter c = new Counter();
    for (int i = 0; i < 12; i = i + 1) {
      c.tick();
      Sys.println("counter = " + c.value);
      Thread.yieldNow();
    }
  }
}
|}

let () =
  (* 1. compile both versions (javac's role) *)
  let old_program = Jv_lang.Compile.compile_program v1 in
  let new_program = Jv_lang.Compile.compile_program v2 in

  (* 2. boot a VM on version 1 and start main *)
  let vm = VM.Vm.create () in
  VM.Vm.boot vm old_program;
  ignore (VM.Vm.spawn_main vm ~main_class:"Main");

  (* 3. let it run a while *)
  VM.Vm.run vm ~rounds:5;

  (* 4. the UPT: diff the versions, generate default transformers *)
  let spec = J.Spec.make ~version_tag:"1" ~old_program ~new_program () in
  Printf.printf "UPT says: %s\n" (J.Diff.summary spec.J.Spec.diff);
  print_string "Generated transformers:\n";
  print_string (J.Transformers.generate_source spec);

  (* 5. signal the VM; the update applies at the next DSU safe point *)
  let handle = J.Jvolve.update_now vm spec in
  Printf.printf "\nUpdate outcome: %s\n\n"
    (J.Jvolve.outcome_to_string handle.J.Jvolve.h_outcome);

  (* 6. run to completion: the same Counter object (value preserved by the
     default transformer, new field zeroed) now triples *)
  ignore (VM.Vm.run_to_quiescence vm);
  print_string "Program output:\n";
  print_string (VM.Vm.output vm)
