(* When safe points cannot be reached: the CrossFTP story (paper §4.4).

     dune exec examples/ftp_update.exe

   miniftp spawns a RequestHandler thread per session; its run() method
   drives the whole session.  The 1.07 -> 1.08 release changes
   RequestHandler.run itself, so with long-lived sessions the method is
   always on stack: Jvolve installs return barriers, waits, and finally
   aborts at the timeout.  On an idle server the same update applies
   immediately — exactly the paper's observation that this update could
   be applied "only when the server was relatively idle". *)

module VM = Jv_vm
module J = Jvolve_core
module A = Jv_apps

let spec () =
  J.Spec.make ~version_tag:"107"
    ~old_program:
      (Jv_lang.Compile.compile_program
         (A.Patching.source A.Miniftp.app ~version:"1.07"))
    ~new_program:
      (Jv_lang.Compile.compile_program
         (A.Patching.source A.Miniftp.app ~version:"1.08"))
    ()

(* a long-lived session: login, then many transfers *)
let persistent_script =
  [ "USER admin"; "PASS ftp" ] @ List.init 400 (fun _ -> "LIST")

let busy_attempt () =
  let vm = A.Experience.boot_version A.Experience.ftp_desc ~version:"1.07" in
  let w =
    A.Workload.attach vm ~port:A.Miniftp.port ~script:persistent_script
      ~concurrency:3 ()
  in
  VM.Vm.run vm ~rounds:40;
  Printf.printf "busy server: %d FTP sessions active, %d commands served\n"
    (List.length w.A.Workload.active)
    w.A.Workload.completed_requests;
  let h = J.Jvolve.update_now ~timeout_rounds:100 vm (spec ()) in
  Printf.printf "update under load -> %s\n  (%d return barriers installed \
                 while waiting)\n"
    (J.Jvolve.outcome_to_string h.J.Jvolve.h_outcome)
    h.J.Jvolve.h_barriers_installed

let idle_attempt () =
  let vm = A.Experience.boot_version A.Experience.ftp_desc ~version:"1.07" in
  VM.Vm.run vm ~rounds:40;
  let h = J.Jvolve.update_now ~timeout_rounds:100 vm (spec ()) in
  Printf.printf "update when idle -> %s\n"
    (J.Jvolve.outcome_to_string h.J.Jvolve.h_outcome);
  (* prove the new version runs: the 1.08 banner includes the session
     count *)
  let w =
    A.Workload.attach vm ~port:A.Miniftp.port ~script:A.Workload.ftp_script
      ~concurrency:2 ()
  in
  VM.Vm.run vm ~rounds:80;
  Printf.printf "served %d commands on the updated server (0 errors: %b)\n"
    w.A.Workload.completed_requests
    (w.A.Workload.errors = 0)

let () =
  busy_attempt ();
  print_newline ();
  idle_attempt ()
