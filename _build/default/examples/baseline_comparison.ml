(* The design-space tour (paper §5): the same update attempted with three
   DSU approaches.

     dune exec examples/baseline_comparison.exe

   The update adds a field and a method to a class with live instances —
   the kind of change that dominates real release histories (Tables 2-4):

   - HotSwap / edit-and-continue: can only swap method bodies; refuses.
   - JDrums/DVM-style lazy indirection: applies, but objects migrate on
     first touch through a handle table, and *every* dereference pays a
     check forever — roughly the paper's "10% overhead" regime.
   - Jvolve: one GC-based pause migrates everything; steady-state
     execution afterwards is exactly as fast as before. *)

module VM = Jv_vm
module J = Jvolve_core
module B = Jv_baseline

let v1 =
  {|
class Account {
  String owner;
  int balance;
  Account(String o, int b) { owner = o; balance = b; }
  int worth() { return balance; }
}
class Bank {
  static Account[] accounts;
  static int total() {
    int t = 0;
    for (int i = 0; i < accounts.length; i = i + 1) { t = t + accounts[i].worth(); }
    return t;
  }
}
class Main {
  static void main() {
    Bank.accounts = new Account[3];
    Bank.accounts[0] = new Account("alice", 100);
    Bank.accounts[1] = new Account("bob", 250);
    Bank.accounts[2] = new Account("carol", 400);
    while (true) {
      Sys.println("total=" + Bank.total());
      Thread.sleep(3);
    }
  }
}
|}

(* v2 adds interest accrual: a new field and a new method *)
let v2 =
  Jv_apps.Patching.patch v1
    [
      ( {|class Account {
  String owner;
  int balance;
  Account(String o, int b) { owner = o; balance = b; }
  int worth() { return balance; }
}|},
        {|class Account {
  String owner;
  int balance;
  int accrued;
  Account(String o, int b) { owner = o; balance = b; accrued = 0; }
  void accrue() { accrued = accrued + balance / 100; }
  int worth() { return balance + accrued; }
}|}
      );
      ( {|    for (int i = 0; i < accounts.length; i = i + 1) { t = t + accounts[i].worth(); }|},
        {|    for (int i = 0; i < accounts.length; i = i + 1) {
      accounts[i].accrue();
      t = t + accounts[i].worth();
    }|}
      );
    ]

let boot ?(indirection = false) () =
  let config =
    {
      VM.State.default_config with
      VM.State.heap_words = 1 lsl 18;
      indirection_mode = indirection;
    }
  in
  let vm = VM.Vm.create ~config () in
  VM.Vm.boot vm (Jv_lang.Compile.compile_program v1);
  ignore (VM.Vm.spawn_main vm ~main_class:"Main");
  VM.Vm.run vm ~rounds:10;
  vm

let spec () =
  J.Spec.make ~version_tag:"1"
    ~old_program:(Jv_lang.Compile.compile_program v1)
    ~new_program:(Jv_lang.Compile.compile_program v2)
    ()

let () =
  let spec = spec () in
  Printf.printf "the update: %s\n\n" (J.Diff.summary spec.J.Spec.diff);

  (* 1: HotSwap *)
  let vm = boot () in
  (match B.Hotswap.apply vm spec with
  | B.Hotswap.Unsupported reason ->
      Printf.printf "HotSwap / edit-and-continue: REFUSED — %s\n" reason
  | B.Hotswap.Applied _ -> print_endline "HotSwap: applied (unexpected!)");

  (* 2: lazy indirection *)
  let vm = boot ~indirection:true () in
  (match B.Indirection.apply vm (J.Transformers.prepare spec) with
  | Ok st ->
      VM.Vm.run vm ~rounds:20;
      Printf.printf
        "lazy indirection: applied; %d objects migrated on first touch; %d \
         dereference checks paid so far (and counting, forever)\n"
        st.B.Indirection.transformed
        (B.Indirection.deref_checks vm)
  | Error e -> Printf.printf "lazy indirection failed: %s\n" e);

  (* 3: Jvolve *)
  let vm = boot () in
  (match (J.Jvolve.update_now vm spec).J.Jvolve.h_outcome with
  | J.Jvolve.Applied t ->
      VM.Vm.run vm ~rounds:20;
      Printf.printf
        "Jvolve: applied in one %.2f ms pause (%d objects transformed \
         eagerly by the GC);\n        dereference checks afterwards: %d — \
         zero steady-state cost\n"
        t.J.Updater.u_total_ms t.J.Updater.u_transformed_objects
        (VM.Vm.stats vm).VM.Vm.deref_checks
  | o -> Printf.printf "Jvolve failed: %s\n" (J.Jvolve.outcome_to_string o));

  (* prove balances survived the Jvolve path *)
  print_endline "\nserver output across the Jvolve update (balances intact,";
  print_endline "new accrual logic visible in later totals):";
  VM.Vm.output vm |> String.split_on_char '\n'
  |> List.filteri (fun i _ -> i < 8)
  |> List.iter (fun l -> if l <> "" then Printf.printf "  %s\n" l)
