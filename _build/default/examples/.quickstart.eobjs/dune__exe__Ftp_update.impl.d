examples/ftp_update.ml: Jv_apps Jv_lang Jv_vm Jvolve_core List Printf
