examples/email_update.mli:
