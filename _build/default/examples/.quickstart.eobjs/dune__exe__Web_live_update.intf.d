examples/web_live_update.mli:
