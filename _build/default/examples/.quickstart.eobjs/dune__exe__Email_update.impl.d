examples/email_update.ml: Buffer Jv_apps Jv_lang Jv_vm Jvolve_core List Printf String
