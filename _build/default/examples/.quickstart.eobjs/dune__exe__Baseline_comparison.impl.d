examples/baseline_comparison.ml: Jv_apps Jv_baseline Jv_lang Jv_vm Jvolve_core List Printf String
