examples/ftp_update.mli:
