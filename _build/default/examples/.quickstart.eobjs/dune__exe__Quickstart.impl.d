examples/quickstart.ml: Jv_lang Jv_vm Jvolve_core Printf
