examples/quickstart.mli:
