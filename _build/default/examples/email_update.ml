(* The paper's running example, end to end (Figures 2 and 3).

     dune exec examples/email_update.exe

   minimail 1.3.1 stores forwarding addresses as raw strings
   ("bob@dest.org"); version 1.3.2 introduces the EmailAddress class and
   changes User.forwardAddresses from String[] to EmailAddress[], plus the
   setter's signature.  The UPT's default transformer would null the
   field; the customized transformer from Figure 3 rebuilds each
   EmailAddress by splitting the old strings on "@".

   We run the mail server under SMTP+POP load, apply the update live, and
   show (a) the custom transformer rebuilt the addresses, (b) the
   always-running SMTPSender.run / Pop3Processor.run loops were carried
   across the update by on-stack replacement, and (c) the server kept
   serving. *)

module VM = Jv_vm
module J = Jvolve_core
module A = Jv_apps

let () =
  (* boot minimail 1.3.1 and put it under load *)
  let vm = A.Experience.boot_version A.Experience.mail_desc ~version:"1.3.1" in
  let smtp =
    A.Workload.attach vm ~port:A.Minimail.smtp_port
      ~script:A.Workload.smtp_script ~concurrency:3 ()
  in
  let pop =
    A.Workload.attach vm ~port:A.Minimail.pop_port
      ~script:A.Workload.pop_script ~concurrency:2 ()
  in
  VM.Vm.run vm ~rounds:60;
  Printf.printf "before update: %d SMTP requests, %d POP requests served\n"
    smtp.A.Workload.completed_requests pop.A.Workload.completed_requests;

  (* the update spec with the paper's customized User transformer *)
  let spec =
    J.Spec.make
      ~object_overrides:[ ("User", A.Minimail.user_transformer_132) ]
      ~version_tag:"131"
      ~old_program:
        (Jv_lang.Compile.compile_program
           (A.Patching.source A.Minimail.app ~version:"1.3.1"))
      ~new_program:
        (Jv_lang.Compile.compile_program
           (A.Patching.source A.Minimail.app ~version:"1.3.2"))
      ()
  in
  Printf.printf "\nUPT: %s\n" (J.Diff.summary spec.J.Spec.diff);
  Printf.printf "customized User transformer (paper Figure 3):\n%s\n"
    A.Minimail.user_transformer_132;

  let h = J.Jvolve.update_now vm spec in
  (match h.J.Jvolve.h_outcome with
  | J.Jvolve.Applied t ->
      Printf.printf
        "update applied: %.2f ms pause, %d objects transformed, %d \
         always-running frames replaced by OSR\n"
        t.J.Updater.u_total_ms t.J.Updater.u_transformed_objects
        t.J.Updater.u_osr
  | o -> failwith (J.Jvolve.outcome_to_string o));

  (* keep serving; the delivery path now renders EmailAddress objects that
     only exist because the transformer rebuilt them *)
  vm.VM.State.out |> Buffer.clear;
  let enable_log =
    (* flip minimail's Log.verbose static so the forwarding lines print *)
    let log = VM.Rt.require_class vm.VM.State.reg "Log" in
    match VM.Rt.find_static_info vm.VM.State.reg log "verbose" with
    | Some si -> VM.State.jtoc_set vm si.VM.Rt.si_slot VM.Value.true_w
    | None -> ()
  in
  enable_log;
  VM.Vm.run vm ~rounds:120;
  Printf.printf "\nafter update: %d SMTP requests, %d POP requests served\n"
    smtp.A.Workload.completed_requests pop.A.Workload.completed_requests;
  let out = VM.Vm.output vm in
  print_string "server log (forwarding uses transformed EmailAddress objects):\n";
  String.split_on_char '\n' out
  |> List.filter (fun l -> l <> "")
  |> List.filteri (fun i _ -> i < 8)
  |> List.iter print_endline
