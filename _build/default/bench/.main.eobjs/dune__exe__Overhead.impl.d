bench/overhead.ml: Jv_apps Jv_baseline Jv_vm Jvolve_core List Micro Printf Support
