bench/support.ml: Array Jv_apps Jv_lang Printf String Sys Unix
