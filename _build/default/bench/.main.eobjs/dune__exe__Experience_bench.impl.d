bench/experience_bench.ml: Fmt Jv_apps Jvolve_core List Printf String Support
