bench/main.ml: Ablation Array Experience_bench Fig5 Micro Overhead Printf Stdlib Support Sys Table1 Unix
