bench/table1.ml: Jv_apps Jv_lang Jv_vm Jvolve_core List Printf Stdlib Support
