bench/main.mli:
