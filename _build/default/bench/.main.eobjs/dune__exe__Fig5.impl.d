bench/fig5.ml: Jv_apps Jv_simnet Jv_vm Jvolve_core List Printf Support
