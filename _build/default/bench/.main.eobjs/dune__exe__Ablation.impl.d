bench/ablation.ml: Jv_apps Jv_lang Jv_vm Jvolve_core List Printf String Support Table1
