bench/micro.ml: Analyze Array Bechamel Benchmark Hashtbl Instance Jv_apps Jv_lang Jv_vm Jvolve_core List Measure Printf Staged Support Table1 Test Time Toolkit
