(* Bechamel micro-measurements of the hot kernels behind each table/figure:

   - table1.gc-collect           : a full semi-space collection (Table 1's
                                   GC column kernel);
   - table1.transformer-call     : one synchronous jvolve-style method
                                   invocation (Table 1's transformer column
                                   kernel);
   - fig5.request-roundtrip      : one scheduler round of the loaded web
                                   server (Figure 5's unit of work);
   - tables234.upt-diff          : one UPT diff of two real releases;
   - overhead.interp-checked     : interpreter slice with per-dereference
     / overhead.interp-unchecked   checks on/off (the §5 comparison). *)

open Bechamel
open Toolkit
module VM = Jv_vm
module J = Jvolve_core
module A = Jv_apps

let gc_vm () =
  let config =
    { VM.State.default_config with VM.State.heap_words = 1 lsl 21 }
  in
  let vm = VM.Vm.create ~config () in
  VM.Vm.boot vm (Jv_lang.Compile.compile_program Table1.v1_src);
  ignore (VM.Vm.spawn_main vm ~main_class:"Main");
  VM.Vm.run vm ~rounds:2;
  Table1.populate vm ~n_change:20_000 ~n_nochange:20_000;
  vm

let loop_vm ~indirection =
  let src =
    {|
class Cell { int v; Cell next; }
class Main {
  static Cell ring;
  static void main() {
    ring = new Cell();
    ring.next = ring;
    Cell c = ring;
    int acc = 0;
    while (true) {
      acc = acc + c.v;
      c = c.next;
    }
  }
}
|}
  in
  let config =
    {
      VM.State.default_config with
      VM.State.indirection_mode = indirection;
      quantum = 20_000;
    }
  in
  let vm = VM.Vm.create ~config () in
  VM.Vm.boot vm (Jv_lang.Compile.compile_program src);
  ignore (VM.Vm.spawn_main vm ~main_class:"Main");
  vm

let web_vm () =
  let vm = A.Experience.boot_version A.Experience.web_desc ~version:"5.1.6" in
  ignore
    (A.Workload.attach vm ~port:A.Miniweb.protocol_port
       ~script:A.Workload.web_script ~ok:A.Workload.web_ok ~concurrency:4 ());
  vm

let transformer_vm () =
  let src =
    {|
class Box { int a; int b; }
class Util {
  static void copy(Box to, Box from) {
    to.a = from.a;
    to.b = from.b;
  }
}
class Main { static void main() { } }
|}
  in
  let vm = VM.Vm.create ~config:{ VM.State.default_config with VM.State.heap_words = 1 lsl 18 } () in
  VM.Vm.boot vm (Jv_lang.Compile.compile_program src);
  let box_cls = VM.Rt.require_class vm.VM.State.reg "Box" in
  let a = VM.State.alloc_object vm box_cls in
  let b = VM.State.alloc_object vm box_cls in
  let util = VM.Rt.require_class vm.VM.State.reg "Util" in
  let m = Array.get util.VM.Rt.methods 0 in
  (vm, m, a, b)

let tests () =
  let gc_vm = gc_vm () in
  let vm_checked = loop_vm ~indirection:true in
  let vm_unchecked = loop_vm ~indirection:false in
  let web = web_vm () in
  let tvm, tm, ta, tb = transformer_vm () in
  let web_old = Support.compile_version A.Miniweb.app ~version:"5.1.4" in
  let web_new = Support.compile_version A.Miniweb.app ~version:"5.1.5" in
  [
    Test.make ~name:"table1.gc-collect"
      (Staged.stage (fun () -> ignore (VM.Gc.collect gc_vm)));
    Test.make ~name:"table1.transformer-call"
      (Staged.stage (fun () ->
           ignore
             (VM.Interp.call_sync tvm tm
                [| VM.Value.of_ref ta; VM.Value.of_ref tb |])));
    Test.make ~name:"fig5.request-roundtrip"
      (Staged.stage (fun () -> VM.Vm.run web ~rounds:1));
    Test.make ~name:"tables234.upt-diff"
      (Staged.stage (fun () ->
           ignore (J.Diff.compute ~old_program:web_old ~new_program:web_new)));
    Test.make ~name:"overhead.interp-checked"
      (Staged.stage (fun () -> VM.Vm.run vm_checked ~rounds:1));
    Test.make ~name:"overhead.interp-unchecked"
      (Staged.stage (fun () -> VM.Vm.run vm_unchecked ~rounds:1));
  ]

let run () =
  Support.section "Bechamel micro-benchmarks (ns per run, OLS estimate)";
  let tests = Test.make_grouped ~name:"jvolve" ~fmt:"%s.%s" (tests ()) in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let quota = if Support.quick then 0.25 else 1.0 in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name o acc -> (name, o) :: acc) results [] in
  List.sort (fun (a, _) (b, _) -> compare a b) rows
  |> List.iter (fun (name, o) ->
         match Analyze.OLS.estimates o with
         | Some [ est ] -> Printf.printf "%-36s %14.1f ns/run\n" name est
         | _ -> Printf.printf "%-36s %14s\n" name "n/a")
