(* Shared helpers for the benchmark harness. *)

let median xs =
  let a = Array.of_list xs in
  Array.sort compare a;
  a.(Array.length a / 2)

let quartiles xs =
  let a = Array.of_list xs in
  Array.sort compare a;
  let n = Array.length a in
  (a.(n / 4), a.(n / 2), a.(3 * n / 4))

let now () = Unix.gettimeofday ()

let hr () = print_endline (String.make 78 '-')

let section title =
  print_newline ();
  hr ();
  Printf.printf "%s\n" title;
  hr ()

(* Scale factor for quick runs: [JVOLVE_BENCH_QUICK=1] shrinks the long
   experiments so the whole suite finishes in well under a minute. *)
let quick = Sys.getenv_opt "JVOLVE_BENCH_QUICK" <> None

let compile_version versioned ~version =
  Jv_lang.Compile.compile_program
    (Jv_apps.Patching.source versioned ~version)
