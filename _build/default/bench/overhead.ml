(* Steady-state overhead (paper §4.1 and §5).

   Jvolve's design thesis: an eager, GC-based update mechanism imposes
   *zero* cost on steady-state execution, unlike lazy indirection-based
   designs (JDrums, DVM) that tax every object dereference, update or no
   update.  We measure miniweb under identical load in three VM modes:

     1. normal (Jvolve) mode — no dereference checks;
     2. indirection mode, no update in flight — every getfield / putfield
        / invokevirtual pays the handle-table check (the persistent tax);
     3. indirection mode with a lazy update applied mid-run — checks plus
        on-demand object migration.

   Also reports the sub-millisecond safe-point synchronization and
   classloading portions of an update (paper: "the time to suspend threads
   ... is less than a millisecond, and classloading time is usually less
   than 20ms"). *)

module VM = Jv_vm
module J = Jvolve_core
module A = Jv_apps
module B = Jv_baseline

(* Fixed-work measurement: serve [target] requests, report wall time.
   A warm-up window first lets the adaptive compiler settle. *)
let run_mode ~indirection ~target =
  let config =
    {
      A.Experience.default_config with
      VM.State.indirection_mode = indirection;
    }
  in
  let vm = A.Experience.boot_version ~config A.Experience.web_desc ~version:"5.1.6" in
  let w =
    A.Workload.attach vm ~port:A.Miniweb.protocol_port
      ~script:A.Workload.web_script ~ok:A.Workload.web_ok ~concurrency:6 ()
  in
  VM.Vm.run vm ~rounds:200 (* warm-up *);
  let base_reqs = w.A.Workload.completed_requests in
  let checks0 = vm.VM.State.deref_checks in
  let t0 = Support.now () in
  while w.A.Workload.completed_requests - base_reqs < target do
    VM.Vm.run vm ~rounds:50
  done;
  let wall = Support.now () -. t0 in
  let reqs = w.A.Workload.completed_requests - base_reqs in
  let checks = vm.VM.State.deref_checks - checks0 in
  A.Workload.detach vm w;
  (float_of_int reqs /. wall, checks)

let run_lazy ~target =
  let config =
    {
      A.Experience.default_config with
      VM.State.indirection_mode = true;
    }
  in
  (* minimail 1.3.3 -> 1.3.4 adds quota fields to User: the three User
     objects in the store migrate lazily when the delivery path first
     touches them *)
  let vm =
    A.Experience.boot_version ~config A.Experience.mail_desc ~version:"1.3.3"
  in
  VM.Vm.run vm ~rounds:10;
  let spec =
    J.Spec.make ~version_tag:"133"
      ~old_program:(Support.compile_version A.Minimail.app ~version:"1.3.3")
      ~new_program:(Support.compile_version A.Minimail.app ~version:"1.3.4")
      ()
  in
  let prepared = J.Transformers.prepare spec in
  let st =
    (* lazy systems have no barrier machinery: retry between rounds until
       the restricted methods happen to be off stack (idle here) *)
    let rec attempt k =
      if k = 0 then failwith "lazy update never reached a safe point"
      else
        match B.Indirection.apply vm prepared with
        | Ok st -> st
        | Error _ ->
            VM.Vm.run vm ~rounds:5;
            attempt (k - 1)
    in
    attempt 100
  in
  let w =
    A.Workload.attach vm ~port:A.Minimail.smtp_port
      ~script:A.Workload.smtp_script ~concurrency:6 ()
  in
  let t0 = Support.now () in
  while w.A.Workload.completed_requests < target do
    VM.Vm.run vm ~rounds:50
  done;
  let wall = Support.now () -. t0 in
  let reqs = w.A.Workload.completed_requests in
  A.Workload.detach vm w;
  (float_of_int reqs /. wall, st.B.Indirection.transformed)

let update_phase_breakdown () =
  (* one representative update; report the paper's phase claims *)
  let vm = A.Experience.boot_version A.Experience.web_desc ~version:"5.1.5" in
  let w =
    A.Workload.attach vm ~port:A.Miniweb.protocol_port
      ~script:A.Workload.web_script ~ok:A.Workload.web_ok ~concurrency:4 ()
  in
  VM.Vm.run vm ~rounds:40;
  let spec =
    J.Spec.make ~version_tag:"515"
      ~old_program:(Support.compile_version A.Miniweb.app ~version:"5.1.5")
      ~new_program:(Support.compile_version A.Miniweb.app ~version:"5.1.6")
      ()
  in
  let h = J.Jvolve.update_now vm spec in
  A.Workload.detach vm w;
  match h.J.Jvolve.h_outcome with
  | J.Jvolve.Applied t ->
      Printf.printf
        "Update phases (miniweb 5.1.5 -> 5.1.6): safe-point sync %.3f ms, \
         classloading/install %.3f ms, GC %.3f ms, transformers %.3f ms\n"
        h.J.Jvolve.h_sync_ms t.J.Updater.u_load_ms t.J.Updater.u_gc_ms
        t.J.Updater.u_transform_ms;
      Printf.printf
        "  (paper: sync < 1 ms, classloading < 20 ms; pause dominated by GC \
         + transformers)\n"
  | o -> failwith ("overhead: " ^ J.Jvolve.outcome_to_string o)

(* The per-dereference tax measured on an interpreter-bound kernel (a
   pointer-chasing loop), where it cannot hide behind scheduler or I/O
   overhead.  Instructions/second with checks on vs off. *)
let deref_tax () =
  let vm_off = Micro.loop_vm ~indirection:false in
  let vm_on = Micro.loop_vm ~indirection:true in
  VM.Vm.run vm_off ~rounds:5 (* warm-up / JIT *);
  VM.Vm.run vm_on ~rounds:5;
  let rounds = if Support.quick then 150 else 500 in
  let sample vm =
    let i0 = vm.VM.State.instr_count in
    let t0 = Support.now () in
    VM.Vm.run vm ~rounds;
    let wall = Support.now () -. t0 in
    float_of_int (vm.VM.State.instr_count - i0) /. wall /. 1.0e6
  in
  (* interleave the two configurations and take medians, so machine noise
     hits both alike *)
  let samples = List.init 9 (fun _ -> (sample vm_off, sample vm_on)) in
  ( Support.median (List.map fst samples),
    Support.median (List.map snd samples) )

let run () =
  Support.section
    "Steady-state overhead: Jvolve (eager, zero-tax) vs indirection \
     baseline (JDrums/DVM-style)";
  let target = if Support.quick then 2_000 else 30_000 in
  let normal_rps, checks0 = run_mode ~indirection:false ~target in
  let indirect_rps, checks1 = run_mode ~indirection:true ~target in
  let lazy_rps, migrated = run_lazy ~target:(target / 2) in
  Printf.printf "%-48s %12s %16s\n" "mode" "req/s" "deref checks";
  Printf.printf "%-48s %12.0f %16d\n" "miniweb, Jvolve mode (no checks)"
    normal_rps checks0;
  Printf.printf "%-48s %12.0f %16d\n"
    "miniweb, indirection mode, no update in flight" indirect_rps checks1;
  Printf.printf "%-48s %12.0f %16s\n"
    "minimail, indirection mode, lazy update applied" lazy_rps
    (Printf.sprintf "(%d migrated)" migrated);
  Printf.printf
    "(request rates are client-pacing-bound; the dereference tax is \
     measured on an\ninterpreter-bound kernel below)\n\n";
  let off_mips, on_mips = deref_tax () in
  Printf.printf
    "Pointer-chasing kernel: %.1f M instr/s without checks, %.1f M instr/s \
     with checks\n-> per-dereference indirection tax: %.1f%% (paper: \
     DVM-style traps cost ~10%%;\nJvolve's eager design costs zero during \
     steady state).\n"
    off_mips on_mips
    ((off_mips -. on_mips) /. off_mips *. 100.0);
  print_newline ();
  update_phase_breakdown ()
