(* jvolvec: the MiniJava compiler CLI.

   Compiles a source file to class files, verifies the bytecode, and
   prints a summary, a full disassembly, or round-trippable assembly.
   With --asm, the input is bytecode assembly rather than MiniJava.

     dune exec bin/jvolvec.exe -- program.mj
     dune exec bin/jvolvec.exe -- --emit-asm program.mj > program.jasm
     dune exec bin/jvolvec.exe -- --asm program.jasm
     dune exec bin/jvolvec.exe -- --transformer-mode transformers.mj *)

module CF = Jv_classfile

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let run dump emit_asm asm_input transformer_mode path =
  let src = read_file path in
  let vmode =
    if transformer_mode then CF.Verifier.Transformer else CF.Verifier.Strict
  in
  let mode =
    if transformer_mode then Jv_lang.Compile.Transformer
    else Jv_lang.Compile.Strict
  in
  let compiled =
    if asm_input then begin
      match CF.Assembler.parse_program src with
      | classes -> (
          match
            CF.Verifier.verify_program ~mode:vmode
              (CF.Cls.program_of_list (CF.Builtins.all @ classes))
          with
          | [] -> Ok classes
          | errs ->
              Error
                ("verification failed:\n  " ^ String.concat "\n  " errs))
      | exception CF.Assembler.Asm_error (m, line) ->
          Error (Printf.sprintf "assembly error at line %d: %s" line m)
    end
    else
      match Jv_lang.Compile.compile_program ~mode src with
      | classes -> Ok classes
      | exception Jv_lang.Compile.Error e -> Error e
  in
  match compiled with
  | Ok classes ->
      if emit_asm then print_string (CF.Assembler.print_program classes)
      else begin
        Printf.printf "%s: %d classes, verification OK\n" path
          (List.length classes);
        List.iter
          (fun (c : CF.Cls.t) ->
            if dump then Fmt.pr "%a@." CF.Cls.pp c
            else
              Printf.printf "  class %s extends %s (%d fields, %d methods)\n"
                c.CF.Cls.c_name c.CF.Cls.c_super
                (List.length c.CF.Cls.c_fields)
                (List.length c.CF.Cls.c_methods))
          classes
      end;
      0
  | Error e ->
      Printf.eprintf "%s: %s\n" path e;
      1

open Cmdliner

let dump =
  Arg.(value & flag & info [ "dump" ] ~doc:"Print full bytecode disassembly.")

let emit_asm =
  Arg.(
    value & flag
    & info [ "emit-asm" ]
        ~doc:"Emit round-trippable bytecode assembly on stdout.")

let asm_input =
  Arg.(
    value & flag
    & info [ "asm" ] ~doc:"Treat the input as bytecode assembly (.jasm).")

let tmode =
  Arg.(
    value & flag
    & info [ "transformer-mode" ]
        ~doc:
          "Compile in transformer mode (ignore access modifiers, allow \
           assignment to final fields), as the UPT does for \
           JvolveTransformers classes.")

let path =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
         ~doc:"MiniJava source file.")

let cmd =
  Cmd.v
    (Cmd.info "jvolvec" ~doc:"MiniJava compiler for the Jvolve VM")
    Term.(const run $ dump $ emit_asm $ asm_input $ tmode $ path)

let () = exit (Cmd.eval' cmd)
