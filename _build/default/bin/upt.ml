(* upt: the Update Preparation Tool CLI (paper §3.1, Figure 1).

   Diffs two versions of a program, prints the update specification
   (class updates / method body updates / indirect method updates), and
   emits the generated default transformer source, ready for the
   programmer to customize.

     dune exec bin/upt.exe -- old.mj new.mj --tag 131 *)

module J = Jvolve_core

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let run old_path new_path tag emit_transformers =
  try
    let old_program = Jv_lang.Compile.compile_program (read_file old_path) in
    let new_program = Jv_lang.Compile.compile_program (read_file new_path) in
    let spec = J.Spec.make ~version_tag:tag ~old_program ~new_program () in
    let d = spec.J.Spec.diff in
    Printf.printf "update specification (%s -> %s, tag v%s):\n" old_path
      new_path tag;
    Printf.printf "  summary: %s\n" (J.Diff.summary d);
    let plist label = function
      | [] -> ()
      | xs -> Printf.printf "  %s: %s\n" label (String.concat ", " xs)
    in
    plist "added classes" d.J.Diff.added_classes;
    plist "deleted classes" d.J.Diff.deleted_classes;
    plist "class updates" d.J.Diff.class_updates;
    plist "class updates (layout closure)" d.J.Diff.class_updates_closure;
    plist "method body updates"
      (List.map J.Diff.mref_to_string d.J.Diff.body_updates);
    plist "indirect method updates (recompiled)"
      (List.map J.Diff.mref_to_string d.J.Diff.indirect_methods);
    (match J.Spec.unsupported_reason spec with
    | Some r -> Printf.printf "  UNSUPPORTED: %s\n" r
    | None -> ());
    Printf.printf "  supportable by method-body-only systems: %b\n"
      (J.Diff.method_body_only_supported d);
    if emit_transformers then begin
      print_endline "\n// ---- generated JvolveTransformers.mj ----";
      print_string (J.Transformers.generate_source spec);
      print_endline "\n// ---- old-class stubs (for reference) ----";
      List.iter
        (fun c -> Fmt.pr "%a@." Jv_classfile.Cls.pp c)
        (J.Transformers.stubs_for spec)
    end;
    0
  with
  | Jv_lang.Compile.Error e ->
      Printf.eprintf "compile error: %s\n" e;
      1
  | J.Transformers.Prepare_error e ->
      Printf.eprintf "prepare error: %s\n" e;
      1

open Cmdliner

let old_path =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"OLD"
         ~doc:"Old program version.")

let new_path =
  Arg.(required & pos 1 (some file) None & info [] ~docv:"NEW"
         ~doc:"New program version.")

let tag =
  Arg.(value & opt string "0" & info [ "tag" ] ~docv:"TAG"
         ~doc:"Version tag prepended to old class names (e.g. 131).")

let emit =
  Arg.(value & flag & info [ "transformers" ]
         ~doc:"Emit the generated default transformer source.")

let cmd =
  Cmd.v
    (Cmd.info "upt" ~doc:"Jvolve Update Preparation Tool")
    Term.(const run $ old_path $ new_path $ tag $ emit)

let () = exit (Cmd.eval' cmd)
