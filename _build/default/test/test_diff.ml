(* UPT diff-engine tests: change classification (paper §3.1), closure over
   subclasses, indirect-method computation, and statistics. *)

module J = Jvolve_core

let compile = Jv_lang.Compile.compile_program

let diff a b = J.Diff.compute ~old_program:(compile a) ~new_program:(compile b)

let field_add_is_class_update () =
  let d =
    diff {|class A { int x; }|} {|class A { int x; int y; }|}
  in
  Alcotest.(check (list string)) "class update" [ "A" ] d.J.Diff.class_updates;
  Alcotest.(check int) "fields added" 1 d.J.Diff.stats.J.Diff.s_fields_added;
  Alcotest.(check bool) "not body-only" false
    (J.Diff.method_body_only_supported d)

let field_type_change_counts_both () =
  let d = diff {|class A { int x; }|} {|class A { boolean x; }|} in
  Alcotest.(check int) "added" 1 d.J.Diff.stats.J.Diff.s_fields_added;
  Alcotest.(check int) "deleted" 1 d.J.Diff.stats.J.Diff.s_fields_deleted;
  Alcotest.(check (list string)) "class update" [ "A" ] d.J.Diff.class_updates

let body_change_only () =
  let d =
    diff {|class A { int f() { return 1; } }|}
      {|class A { int f() { return 2; } }|}
  in
  Alcotest.(check (list string)) "no class updates" [] d.J.Diff.class_updates;
  Alcotest.(check int) "one body change" 1
    d.J.Diff.stats.J.Diff.s_methods_changed_body;
  Alcotest.(check bool) "body-only supported" true
    (J.Diff.method_body_only_supported d);
  match d.J.Diff.body_updates with
  | [ r ] ->
      Alcotest.(check string) "ref" "A.f()I" (J.Diff.mref_to_string r)
  | _ -> Alcotest.fail "expected one body update"

let signature_change_pairs_add_delete () =
  let d =
    diff {|class A { int f(int x) { return x; } }|}
      {|class A { int f(int x, int y) { return x + y; } }|}
  in
  Alcotest.(check int) "sig changes" 1
    d.J.Diff.stats.J.Diff.s_methods_changed_sig;
  Alcotest.(check int) "no plain adds" 0 d.J.Diff.stats.J.Diff.s_methods_added;
  Alcotest.(check int) "no plain deletes" 0
    d.J.Diff.stats.J.Diff.s_methods_deleted

let visibility_change_is_signature_change () =
  let d =
    diff {|class A { int f() { return 1; } }|}
      {|class A { private int f() { return 1; } }|}
  in
  Alcotest.(check (list string)) "class update" [ "A" ] d.J.Diff.class_updates

let super_change_flagged () =
  let d =
    diff {|class B {} class C {} class A extends B {}|}
      {|class B {} class C {} class A extends C {}|}
  in
  Alcotest.(check (list string)) "super change" [ "A" ] d.J.Diff.super_changes;
  let spec =
    J.Spec.make ~version_tag:"1"
      ~old_program:(compile {|class B {} class C {} class A extends B {}|})
      ~new_program:(compile {|class B {} class C {} class A extends C {}|})
      ()
  in
  match J.Spec.unsupported_reason spec with
  | Some r ->
      if not (Helpers.contains r "superclass") then
        Alcotest.failf "reason %s" r
  | None -> Alcotest.fail "super change must be unsupported"

let closure_includes_subclasses () =
  (* adding a field to a superclass changes every subclass's layout *)
  let d =
    diff
      {|class P { int a; } class C1 extends P {} class C2 extends C1 {}
        class Other {}|}
      {|class P { int a; int b; } class C1 extends P {} class C2 extends C1 {}
        class Other {}|}
  in
  Alcotest.(check (list string)) "direct" [ "P" ] d.J.Diff.class_updates;
  Alcotest.(check (list string)) "closure" [ "C1"; "C2"; "P" ]
    d.J.Diff.class_updates_closure

let indirect_methods_found () =
  (* Unchanged.use references the updated class A: its compiled code has
     stale offsets even though its bytecode is identical *)
  let v1 =
    {|class A { int x; }
      class Unchanged { static int use(A a) { return a.x; } }
      class Unrelated { static int f() { return 3; } }|}
  in
  let v2 =
    {|class A { int pad; int x; }
      class Unchanged { static int use(A a) { return a.x; } }
      class Unrelated { static int f() { return 3; } }|}
  in
  let d = diff v1 v2 in
  let names = List.map J.Diff.mref_to_string d.J.Diff.indirect_methods in
  Alcotest.(check bool) "use is indirect" true
    (List.exists (fun n -> Helpers.contains n "Unchanged.use") names);
  Alcotest.(check bool) "unrelated is not" false
    (List.exists (fun n -> Helpers.contains n "Unrelated") names)

let indirect_via_call_signatures () =
  (* [Maker.pass]'s body never touches A's members, so its compiled code
     has no stale offsets and it is NOT indirect; but a *caller* of pass
     mentions A through the call's signature and IS *)
  let v1 =
    {|class A { int x; }
      class Maker { static A pass(A a) { return a; } }
      class Caller { static void go() { Maker.pass(null); } }|}
  in
  let v2 =
    {|class A { int pad; int x; }
      class Maker { static A pass(A a) { return a; } }
      class Caller { static void go() { Maker.pass(null); } }|}
  in
  let d = diff v1 v2 in
  let names = List.map J.Diff.mref_to_string d.J.Diff.indirect_methods in
  Alcotest.(check bool) "pass itself not stale" false
    (List.exists (fun n -> Helpers.contains n "Maker.pass") names);
  Alcotest.(check bool) "caller is stale" true
    (List.exists (fun n -> Helpers.contains n "Caller.go") names)

let changed_methods_not_indirect () =
  let v1 =
    {|class A { int x; }
      class B { static int f(A a) { return a.x; } }|}
  in
  let v2 =
    {|class A { int pad; int x; }
      class B { static int f(A a) { return a.x + 1; } }|}
  in
  let d = diff v1 v2 in
  (* B.f changed body AND references A: classified as a body update, not
     indirect *)
  Alcotest.(check int) "body updates" 1 (List.length d.J.Diff.body_updates);
  Alcotest.(check bool) "not also indirect" false
    (List.exists
       (fun r -> Helpers.contains (J.Diff.mref_to_string r) "B.f")
       d.J.Diff.indirect_methods)

let add_delete_classes () =
  let d = diff {|class A {} class B {}|} {|class A {} class C {}|} in
  Alcotest.(check (list string)) "added" [ "C" ] d.J.Diff.added_classes;
  Alcotest.(check (list string)) "deleted" [ "B" ] d.J.Diff.deleted_classes

let no_change_is_empty () =
  let src = {|class A { int f() { return 1; } int x; }|} in
  let d = diff src src in
  Alcotest.(check bool) "nothing" false
    (J.Spec.changed_anything
       (J.Spec.make ~version_tag:"1" ~old_program:(compile src)
          ~new_program:(compile src) ()));
  Alcotest.(check int) "no changed classes" 0
    d.J.Diff.stats.J.Diff.s_classes_changed

let suite =
  [
    Alcotest.test_case "field add = class update" `Quick
      field_add_is_class_update;
    Alcotest.test_case "field type change" `Quick
      field_type_change_counts_both;
    Alcotest.test_case "body change only" `Quick body_change_only;
    Alcotest.test_case "signature change pairing" `Quick
      signature_change_pairs_add_delete;
    Alcotest.test_case "visibility change" `Quick
      visibility_change_is_signature_change;
    Alcotest.test_case "super change flagged" `Quick super_change_flagged;
    Alcotest.test_case "closure includes subclasses" `Quick
      closure_includes_subclasses;
    Alcotest.test_case "indirect methods found" `Quick indirect_methods_found;
    Alcotest.test_case "indirect via call signatures" `Quick
      indirect_via_call_signatures;
    Alcotest.test_case "changed methods not indirect" `Quick
      changed_methods_not_indirect;
    Alcotest.test_case "class add/delete" `Quick add_delete_classes;
    Alcotest.test_case "no change" `Quick no_change_is_empty;
  ]
