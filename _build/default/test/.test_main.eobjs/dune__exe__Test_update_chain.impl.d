test/test_update_chain.ml: Alcotest Helpers Jv_apps Jv_lang Jv_vm Jvolve_core List Printf String
