test/test_apps.ml: Alcotest Helpers Jv_apps Jv_lang Jv_vm Jvolve_core List
