test/test_diff.ml: Alcotest Helpers Jv_lang Jvolve_core List
