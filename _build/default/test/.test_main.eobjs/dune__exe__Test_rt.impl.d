test/test_rt.ml: Alcotest Array Hashtbl Helpers Jv_classfile Jv_lang Jv_vm Option
