test/test_transformers.ml: Alcotest Helpers Jv_classfile Jv_lang Jvolve_core List
