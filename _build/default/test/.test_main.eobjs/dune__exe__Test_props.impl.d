test/test_props.ml: Array Gen Helpers Jv_lang Jv_vm Jvolve_core List Printf QCheck QCheck_alcotest String
