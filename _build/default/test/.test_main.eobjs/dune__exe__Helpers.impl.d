test/helpers.ml: Alcotest Jv_classfile Jv_lang Jv_vm String
