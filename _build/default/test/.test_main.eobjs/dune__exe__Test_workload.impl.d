test/test_workload.ml: Alcotest Helpers Jv_apps Jv_lang Jv_vm List
