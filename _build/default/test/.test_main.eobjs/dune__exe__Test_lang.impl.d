test/test_lang.ml: Alcotest Ast Helpers Jv_lang Lexer List Parser Printf String
