test/test_dsu.ml: Alcotest Helpers Jv_classfile Jv_lang Jv_vm Jvolve_core List Printf String
