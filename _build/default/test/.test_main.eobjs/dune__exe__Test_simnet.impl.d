test/test_simnet.ml: Alcotest Jv_simnet List Option
