test/test_stress.ml: Alcotest Helpers Jv_apps Jv_lang Jv_vm Jvolve_core List String
