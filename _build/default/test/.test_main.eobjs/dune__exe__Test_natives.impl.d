test/test_natives.ml: Alcotest Helpers Jv_vm
