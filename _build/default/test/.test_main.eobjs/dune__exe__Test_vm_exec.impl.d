test/test_vm_exec.ml: Alcotest Array Helpers Jv_classfile Jv_lang Jv_vm List Option Printf QCheck QCheck_alcotest String
