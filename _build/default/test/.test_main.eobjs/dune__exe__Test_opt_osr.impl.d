test/test_opt_osr.ml: Alcotest Helpers Jv_apps Jv_classfile Jv_lang Jv_vm Jvolve_core List String
