test/test_baseline.ml: Alcotest Helpers Jv_baseline Jv_classfile Jv_lang Jv_vm Jvolve_core Printf
