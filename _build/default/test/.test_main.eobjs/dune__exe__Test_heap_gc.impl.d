test/test_heap_gc.ml: Alcotest Array Buffer Hashtbl Helpers Jv_classfile Jv_lang Jv_vm Printf QCheck QCheck_alcotest String
