test/test_assembler.ml: Alcotest Helpers Jv_apps Jv_classfile Jv_lang Jv_vm List QCheck QCheck_alcotest String
