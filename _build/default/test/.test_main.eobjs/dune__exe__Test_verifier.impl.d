test/test_verifier.ml: Access Alcotest Array Builtins Cls Helpers Instr Jv_apps Jv_classfile Jv_lang List String Types Verifier
