test/test_pipeline.ml: Alcotest Helpers Jv_vm List
