(* Simnet substrate tests: the in-memory network the servers run on. *)

module N = Jv_simnet.Simnet

let listen_connect () =
  let t = N.create () in
  let lid = N.listen t ~port:80 in
  Alcotest.(check (option int)) "nothing pending" None
    (N.accept t ~listener_id:lid);
  (match N.connect t ~port:81 with
  | None -> ()
  | Some _ -> Alcotest.fail "connect to unbound port should fail");
  match N.connect t ~port:80 with
  | None -> Alcotest.fail "connect failed"
  | Some cid -> (
      Alcotest.(check bool) "pending now" true
        (N.has_pending t ~listener_id:lid);
      match N.accept t ~listener_id:lid with
      | Some c -> Alcotest.(check int) "same conn" cid c
      | None -> Alcotest.fail "accept failed")

let double_bind_rejected () =
  let t = N.create () in
  ignore (N.listen t ~port:80);
  Alcotest.check_raises "double bind" (N.Net_error "port 80 already bound")
    (fun () -> ignore (N.listen t ~port:80))

let fifo_order () =
  let t = N.create () in
  let lid = N.listen t ~port:80 in
  let c = Option.get (N.connect t ~port:80) in
  ignore (N.accept t ~listener_id:lid);
  List.iter (fun s -> N.client_send t ~conn_id:c s) [ "a"; "b"; "c" ];
  let recv () =
    match N.recv_line t ~conn_id:c with
    | `Line s -> s
    | _ -> Alcotest.fail "expected a line"
  in
  Alcotest.(check string) "1st" "a" (recv ());
  (* interleave more sends: order must be globally FIFO *)
  N.client_send t ~conn_id:c "d";
  Alcotest.(check string) "2nd" "b" (recv ());
  Alcotest.(check string) "3rd" "c" (recv ());
  Alcotest.(check string) "4th" "d" (recv ())

let bidirectional_and_eof () =
  let t = N.create () in
  let lid = N.listen t ~port:80 in
  let c = Option.get (N.connect t ~port:80) in
  ignore (N.accept t ~listener_id:lid);
  N.send t ~conn_id:c "srv1";
  (match N.client_recv t ~conn_id:c with
  | `Line s -> Alcotest.(check string) "to client" "srv1" s
  | _ -> Alcotest.fail "expected line");
  (* wait state when empty *)
  (match N.recv_line t ~conn_id:c with
  | `Wait -> ()
  | _ -> Alcotest.fail "expected Wait");
  (* client closes: server drains queued data, then sees EOF *)
  N.client_send t ~conn_id:c "last";
  N.client_close t ~conn_id:c;
  (match N.recv_line t ~conn_id:c with
  | `Line s -> Alcotest.(check string) "drained" "last" s
  | _ -> Alcotest.fail "expected drained line");
  (match N.recv_line t ~conn_id:c with
  | `Eof -> ()
  | _ -> Alcotest.fail "expected EOF");
  (* server close is visible to the client *)
  N.close_server t ~conn_id:c;
  match N.client_recv t ~conn_id:c with
  | `Eof -> ()
  | _ -> Alcotest.fail "expected client EOF"

let byte_accounting () =
  let t = N.create () in
  let lid = N.listen t ~port:80 in
  let c = Option.get (N.connect t ~port:80) in
  ignore (N.accept t ~listener_id:lid);
  N.client_send t ~conn_id:c "12345";
  N.send t ~conn_id:c "123";
  let to_server, to_client = N.stats t in
  Alcotest.(check int) "to server (line + newline)" 6 to_server;
  Alcotest.(check int) "to client" 4 to_client;
  N.reset_stats t;
  Alcotest.(check (pair int int)) "reset" (0, 0) (N.stats t)

let reap_frees_storage () =
  let t = N.create () in
  let lid = N.listen t ~port:80 in
  let c = Option.get (N.connect t ~port:80) in
  ignore (N.accept t ~listener_id:lid);
  N.client_close t ~conn_id:c;
  (* not yet reapable: server half still open *)
  N.reap t ~conn_id:c;
  Alcotest.(check bool) "still known" true
    (match N.recv_line t ~conn_id:c with `Eof -> true | _ -> false);
  N.close_server t ~conn_id:c;
  N.reap t ~conn_id:c;
  Alcotest.check_raises "gone" (N.Net_error "unknown connection 1") (fun () ->
      ignore (N.recv_line t ~conn_id:c))

let send_after_close_dropped () =
  let t = N.create () in
  let lid = N.listen t ~port:80 in
  let c = Option.get (N.connect t ~port:80) in
  ignore (N.accept t ~listener_id:lid);
  N.close_server t ~conn_id:c;
  N.send t ~conn_id:c "into the void";
  match N.client_recv t ~conn_id:c with
  | `Eof -> ()
  | _ -> Alcotest.fail "send after close must be dropped"

let suite =
  [
    Alcotest.test_case "listen and connect" `Quick listen_connect;
    Alcotest.test_case "double bind rejected" `Quick double_bind_rejected;
    Alcotest.test_case "FIFO order" `Quick fifo_order;
    Alcotest.test_case "bidirectional and EOF" `Quick bidirectional_and_eof;
    Alcotest.test_case "byte accounting" `Quick byte_accounting;
    Alcotest.test_case "reap frees storage" `Quick reap_frees_storage;
    Alcotest.test_case "send after close dropped" `Quick
      send_after_close_dropped;
  ]
