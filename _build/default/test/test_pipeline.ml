(* End-to-end smoke tests: MiniJava source -> compiler -> verifier -> VM. *)

let hello () =
  Helpers.check_output ~expected:"hello world\n"
    {| class Main { static void main() { Sys.println("hello world"); } } |}

let arithmetic () =
  Helpers.check_output ~expected:"42 -7 30 3 1\n"
    {|
class Main {
  static void main() {
    int a = 6 * 7;
    int b = 3 - 10;
    int c = (a + b) - 5;
    int d = a / 12;
    int e = a % 41;
    Sys.println("" + a + " " + b + " " + c + " " + d + " " + e);
  }
}
|}

let control_flow () =
  Helpers.check_output ~expected:"0 1 2 3 4\nsum=10\nevens: 0 2 4 6 8\n"
    {|
class Main {
  static void main() {
    String line = "";
    int i = 0;
    while (i < 5) {
      if (i > 0) { line = line + " "; }
      line = line + i;
      i = i + 1;
    }
    Sys.println(line);
    int sum = 0;
    for (int j = 0; j < 5; j = j + 1) { sum = sum + j; }
    Sys.println("sum=" + sum);
    String evens = "evens:";
    for (int k = 0; k < 10; k = k + 1) {
      if (k % 2 != 0) { continue; }
      evens = evens + " " + k;
    }
    Sys.println(evens);
  }
}
|}

let objects_and_fields () =
  Helpers.check_output ~expected:"p=(3,4) moved=(13,24) dist2=25\n"
    {|
class Point {
  private int x; private int y;
  Point(int x0, int y0) { x = x0; y = y0; }
  int getX() { return x; }
  int getY() { return y; }
  void move(int dx, int dy) { x = x + dx; y = y + dy; }
  int dist2() { return x * x + y * y; }
}
class Main {
  static void main() {
    Point p = new Point(3, 4);
    int d = p.dist2();
    String before = "p=(" + p.getX() + "," + p.getY() + ")";
    p.move(10, 20);
    Sys.println(before + " moved=(" + p.getX() + "," + p.getY() + ") dist2=" + d);
  }
}
|}

let inheritance_and_dispatch () =
  Helpers.check_output ~expected:"woof meow woof generic\n"
    {|
class Animal {
  String speak() { return "generic"; }
}
class Dog extends Animal {
  String speak() { return "woof"; }
}
class Cat extends Animal {
  String speak() { return "meow"; }
}
class Main {
  static void main() {
    Animal[] zoo = new Animal[4];
    zoo[0] = new Dog();
    zoo[1] = new Cat();
    zoo[2] = new Dog();
    zoo[3] = new Animal();
    String out = "";
    for (int i = 0; i < zoo.length; i = i + 1) {
      if (i > 0) { out = out + " "; }
      out = out + zoo[i].speak();
    }
    Sys.println(out);
  }
}
|}

let static_members () =
  Helpers.check_output ~expected:"count=3 base=100\n"
    {|
class Counter {
  static int count = 0;
  static int base = 100;
  static void bump() { count = count + 1; }
}
class Main {
  static void main() {
    Counter.bump(); Counter.bump(); Counter.bump();
    Sys.println("count=" + Counter.count + " base=" + Counter.base);
  }
}
|}

let strings () =
  Helpers.check_output
    ~expected:"len=11 sub=world idx=6 up?=false parts=3 [a|b|c] 17\n"
    {|
class Main {
  static void main() {
    String s = "hello world";
    String sub = s.substring(6, 11);
    int idx = s.indexOf("world");
    boolean st = s.startsWith("world");
    String[] parts = "a,b,c".split(",", 0);
    String joined = "[" + parts[0] + "|" + parts[1] + "|" + parts[2] + "]";
    int n = "17".toInt();
    Sys.println("len=" + s.length() + " sub=" + sub + " idx=" + idx
      + " up?=" + boolStr(st) + " parts=" + parts.length + " " + joined + " " + n);
  }
  static String boolStr(boolean b) { if (b) { return "true"; } return "false"; }
}
|}

let constructors_and_super () =
  Helpers.check_output ~expected:"B(7):A(7) v=14\n"
    {|
class A {
  int v;
  String tag;
  A(int x) { v = x; tag = "A(" + x + ")"; }
}
class B extends A {
  String btag;
  B(int x) { super(x); btag = "B(" + x + "):" + tag; v = v * 2; }
}
class Main {
  static void main() {
    B b = new B(7);
    Sys.println(b.btag + " v=" + b.v);
  }
}
|}

let casts_and_instanceof () =
  Helpers.check_output ~expected:"dog cat:true animal:false\n"
    {|
class Animal { String name() { return "animal"; } }
class Dog extends Animal { String name() { return "dog"; } String trick() { return "sit"; } }
class Cat extends Animal { String name() { return "cat"; } }
class Main {
  static void main() {
    Animal a = new Dog();
    Dog d = (Dog) a;
    Animal c = new Cat();
    boolean isCat = c instanceof Cat;
    boolean dogIsCat = a instanceof Cat;
    Sys.println(d.name() + " cat:" + bs(isCat) + " animal:" + bs(dogIsCat));
  }
  static String bs(boolean b) { if (b) { return "true"; } return "false"; }
}
|}

let recursion () =
  Helpers.check_output ~expected:"fib(20)=6765 fact(10)=3628800\n"
    {|
class Main {
  static int fib(int n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }
  static int fact(int n) { if (n <= 1) { return 1; } return n * fact(n-1); }
  static void main() {
    Sys.println("fib(20)=" + fib(20) + " fact(10)=" + fact(10));
  }
}
|}

let threads () =
  let out =
    Helpers.output_of
      {|
class Worker {
  int id;
  Worker(int i) { id = i; }
  void run() {
    for (int i = 0; i < 3; i = i + 1) {
      Sys.println("w" + id + ":" + i);
      Thread.yieldNow();
    }
  }
}
class Main {
  static void main() {
    Thread.spawn(new Worker(1));
    Thread.spawn(new Worker(2));
  }
}
|}
  in
  (* both workers must complete all iterations, interleaved by the
     scheduler *)
  List.iter
    (fun line ->
      if not (Helpers.contains out line) then
        Alcotest.failf "missing %S in output %S" line out)
    [ "w1:0"; "w1:1"; "w1:2"; "w2:0"; "w2:1"; "w2:2" ]

let traps_kill_thread_only () =
  let vm =
    Helpers.run_source
      {|
class Crasher {
  void run() { int[] a = new int[2]; Sys.println("x" + a[5]); }
}
class Main {
  static void main() {
    Thread.spawn(new Crasher());
    Sys.println("main done");
  }
}
|}
  in
  let stats = Jv_vm.Vm.stats vm in
  Alcotest.(check int) "one trap" 1 (List.length stats.Jv_vm.Vm.traps);
  if not (Helpers.contains (Jv_vm.Vm.output vm) "main done") then
    Alcotest.fail "main thread should complete"

let division_by_zero_traps () =
  let vm =
    Helpers.run_source
      {| class Main { static void main() { int x = 0; Sys.println("" + (1 / x)); } } |}
  in
  match (Jv_vm.Vm.stats vm).Jv_vm.Vm.traps with
  | [ (_, msg) ] ->
      if not (Helpers.contains msg "division by zero") then
        Alcotest.failf "unexpected trap %s" msg
  | l -> Alcotest.failf "expected 1 trap, got %d" (List.length l)

let null_deref_traps () =
  let vm =
    Helpers.run_source
      {|
class Box { int v; }
class Main { static void main() { Box b = null; Sys.println("" + b.v); } }
|}
  in
  match (Jv_vm.Vm.stats vm).Jv_vm.Vm.traps with
  | [ (_, msg) ] ->
      if not (Helpers.contains msg "null dereference") then
        Alcotest.failf "unexpected trap %s" msg
  | l -> Alcotest.failf "expected 1 trap, got %d" (List.length l)

let suite =
  [
    Alcotest.test_case "hello world" `Quick hello;
    Alcotest.test_case "arithmetic" `Quick arithmetic;
    Alcotest.test_case "control flow" `Quick control_flow;
    Alcotest.test_case "objects and fields" `Quick objects_and_fields;
    Alcotest.test_case "inheritance and dispatch" `Quick
      inheritance_and_dispatch;
    Alcotest.test_case "static members" `Quick static_members;
    Alcotest.test_case "strings" `Quick strings;
    Alcotest.test_case "constructors and super" `Quick constructors_and_super;
    Alcotest.test_case "casts and instanceof" `Quick casts_and_instanceof;
    Alcotest.test_case "recursion" `Quick recursion;
    Alcotest.test_case "threads" `Quick threads;
    Alcotest.test_case "traps kill thread only" `Quick traps_kill_thread_only;
    Alcotest.test_case "division by zero" `Quick division_by_zero_traps;
    Alcotest.test_case "null dereference" `Quick null_deref_traps;
  ]
