(* Unit tests for the MiniJava frontend: lexer, parser, and typechecker
   error behaviour. *)

open Jv_lang

let lex src =
  Lexer.tokenize src |> List.map Lexer.token_to_string |> String.concat " "

let check_lex ~expected src =
  Alcotest.(check string) "tokens" expected (lex src)

let lex_error ~substr src =
  match Lexer.tokenize src with
  | _ -> Alcotest.failf "expected lex error for %S" src
  | exception Lexer.Lex_error (m, _) ->
      if not (Helpers.contains m substr) then
        Alcotest.failf "lex error %S does not mention %S" m substr

(* --- lexer ---------------------------------------------------------------- *)

let lex_basics () =
  check_lex ~expected:{|class Foo { int x ; } <eof>|} "class Foo { int x; }";
  check_lex ~expected:{|a == b != c <= d >= e && f || g <eof>|}
    "a == b != c <= d >= e && f || g";
  check_lex ~expected:{|x = - 12 + 3 <eof>|} "x = -12 + 3"

let lex_strings () =
  check_lex ~expected:{|"hi" <eof>|} {|"hi"|};
  check_lex ~expected:"\"a\\nb\" <eof>" {|"a\nb"|};
  check_lex ~expected:{|"quote \" done" <eof>|} {|"quote \" done"|};
  check_lex ~expected:"\"tab\\tx\" <eof>" {|"tab\tx"|}

let lex_comments () =
  check_lex ~expected:{|a b <eof>|} "a // comment here\nb";
  check_lex ~expected:{|a b <eof>|} "a /* multi\nline */ b";
  check_lex ~expected:{|a <eof>|} "a /* nested // line */"

let lex_errors () =
  lex_error ~substr:"unterminated string" {|"abc|};
  lex_error ~substr:"unterminated comment" "/* foo";
  lex_error ~substr:"unexpected character" "int x = #;";
  lex_error ~substr:"bad escape" {|"a\q"|};
  lex_error ~substr:"newline in string" "\"ab\ncd\""

let lex_positions () =
  let toks = Lexer.tokenize "class\n  Foo" in
  match toks with
  | [ { tpos = p1; _ }; { tpos = p2; _ }; _ ] ->
      Alcotest.(check int) "line 1" 1 p1.Ast.line;
      Alcotest.(check int) "line 2" 2 p2.Ast.line;
      Alcotest.(check int) "col 3" 3 p2.Ast.col
  | _ -> Alcotest.fail "expected 3 tokens"

(* --- parser ---------------------------------------------------------------- *)

let parse src = Parser.parse_program src

let parse_error ~substr src =
  match parse src with
  | _ -> Alcotest.failf "expected parse error for %S" src
  | exception Parser.Parse_error (m, _) ->
      if not (Helpers.contains m substr) then
        Alcotest.failf "parse error %S does not mention %S" m substr

let parser_classes () =
  match parse "class A {} class B extends A { int x; }" with
  | [ a; b ] ->
      Alcotest.(check string) "a" "A" a.Ast.cd_name;
      Alcotest.(check (option string)) "a super" None a.Ast.cd_super;
      Alcotest.(check (option string)) "b super" (Some "A") b.Ast.cd_super;
      Alcotest.(check int) "b fields" 1 (List.length b.Ast.cd_fields)
  | _ -> Alcotest.fail "expected two classes"

(* precedence: 1 + 2 * 3 parses as 1 + (2 * 3) *)
let parser_precedence () =
  let prog =
    parse "class A { int f() { return 1 + 2 * 3; } }"
  in
  match prog with
  | [ { Ast.cd_methods = [ { Ast.md_body = Some [ Ast.S_return (Some e, _) ]; _ } ]; _ } ]
    -> (
      match e.Ast.e with
      | Ast.E_binop ("+", { e = Ast.E_int 1; _ }, { e = Ast.E_binop ("*", _, _); _ })
        -> ()
      | _ -> Alcotest.fail "wrong precedence shape")
  | _ -> Alcotest.fail "unexpected program shape"

(* a cast looks like a parenthesized name; the parser must distinguish
   [(Foo) x] from [(foo) + 1] *)
let parser_cast_disambiguation () =
  let body src =
    match parse (Printf.sprintf "class A { int f(int y) { %s } }" src) with
    | [ { Ast.cd_methods = [ { Ast.md_body = Some [ s ]; _ } ]; _ } ] -> s
    | _ -> Alcotest.fail "unexpected shape"
  in
  (match body "return (y) + 1;" with
  | Ast.S_return (Some { e = Ast.E_binop ("+", _, _); _ }, _) -> ()
  | _ -> Alcotest.fail "(y) + 1 must parse as addition");
  match
    parse "class B {} class A { B f(Object o) { return (B) o; } }"
  with
  | [ _; { Ast.cd_methods = [ { Ast.md_body = Some [ Ast.S_return (Some e, _) ]; _ } ]; _ } ]
    -> (
      match e.Ast.e with
      | Ast.E_cast ("B", _) -> ()
      | _ -> Alcotest.fail "(B) o must parse as a cast")
  | _ -> Alcotest.fail "unexpected shape"

let parser_decl_vs_expr () =
  let stmts src =
    match parse (Printf.sprintf "class F {} class A { void f(F x) { %s } }" src)
    with
    | [ _; { Ast.cd_methods = [ { Ast.md_body = Some ss; _ } ]; _ } ] -> ss
    | _ -> Alcotest.fail "unexpected shape"
  in
  (match stmts "F y = x;" with
  | [ Ast.S_var (Ast.St_class "F", "y", Some _, _) ] -> ()
  | _ -> Alcotest.fail "expected declaration");
  (match stmts "F[] ys = null;" with
  | [ Ast.S_var (Ast.St_array (Ast.St_class "F"), "ys", Some _, _) ] -> ()
  | _ -> Alcotest.fail "expected array declaration");
  match stmts "x = null;" with
  | [ Ast.S_expr { e = Ast.E_assign _; _ } ] -> ()
  | _ -> Alcotest.fail "expected assignment statement"

let parser_for_variants () =
  ignore (parse "class A { void f() { for (;;) { break; } } }");
  ignore (parse "class A { void f() { for (int i = 0; i < 3; i = i + 1) {} } }");
  ignore (parse "class A { int g; void f() { for (g = 0; g < 3; g = g + 1) {} } }")

let parser_ctor_vs_method () =
  match parse "class A { A() {} A makeA() { return new A(); } }" with
  | [ { Ast.cd_methods = [ ctor; meth ]; _ } ] ->
      Alcotest.(check bool) "ctor" true ctor.Ast.md_is_ctor;
      Alcotest.(check bool) "meth" false meth.Ast.md_is_ctor;
      Alcotest.(check string) "meth name" "makeA" meth.Ast.md_name
  | _ -> Alcotest.fail "unexpected shape"

let parser_modifiers () =
  match parse "class A { private static final int x = 1; protected native void f(); }"
  with
  | [ { Ast.cd_fields = [ f ]; cd_methods = [ m ]; _ } ] ->
      Alcotest.(check bool) "static" true f.Ast.f_mods.Ast.m_static;
      Alcotest.(check bool) "final" true f.Ast.f_mods.Ast.m_final;
      Alcotest.(check bool) "native" true m.Ast.md_mods.Ast.m_native;
      Alcotest.(check bool) "no body" true (m.Ast.md_body = None)
  | _ -> Alcotest.fail "unexpected shape"

let parser_errors () =
  parse_error ~substr:"expected" "class A { int f( { } }";
  parse_error ~substr:"expected expression" "class A { void f() { return +; } }";
  parse_error ~substr:"expected keyword" "klass A {}";
  parse_error ~substr:"non-native method must have a body"
    "class A { void f(); }";
  parse_error ~substr:"field cannot have type void" "class A { void x; }";
  parse_error ~substr:"cannot construct a primitive"
    "class A { void f() { int x = new int(3); } }"

(* --- typechecker error cases ------------------------------------------------ *)

let terr ~substr src = Helpers.check_compile_error ~substr src

let ty_mismatches () =
  terr ~substr:"expected int" {|class A { int f() { return true; } }|};
  terr ~substr:"left operand" {|class A { int f() { return true + 1; } }|};
  terr ~substr:"cannot initialize"
    {|class A { void f() { int x = "s"; } }|};
  terr ~substr:"if condition" {|class A { void f() { if (1) {} } }|};
  terr ~substr:"while condition" {|class A { void f() { while (0) {} } }|};
  terr ~substr:"array index"
    {|class A { void f(int[] a) { int x = a[true]; } }|};
  terr ~substr:"cannot compare"
    {|class A { boolean f() { return true == false; } }|}

let ty_names () =
  terr ~substr:"unknown identifier" {|class A { int f() { return zork; } }|};
  terr ~substr:"unknown class" {|class A { Zork z; }|};
  terr ~substr:"unknown superclass" {|class A extends Zork {}|};
  terr ~substr:"duplicate local"
    {|class A { void f() { int x = 1; int x = 2; } }|};
  terr ~substr:"duplicate field" {|class A { int x; int x; }|};
  terr ~substr:"duplicate method" {|class A { void f() {} void f() {} }|};
  terr ~substr:"duplicate class" {|class A {} class A {}|};
  terr ~substr:"cyclic inheritance" {|class A extends B {} class B extends A {}|};
  terr ~substr:"cannot extend builtin" {|class A extends String {}|}

let ty_members () =
  terr ~substr:"no field" {|class B {} class A { int f(B b) { return b.x; } }|};
  terr ~substr:"no method"
    {|class B {} class A { void f(B b) { b.zap(); } }|};
  terr ~substr:"no applicable overload"
    {|class A { void g(int x) {} void f() { g(true); } }|};
  terr ~substr:"accessed via instance"
    {|class B { static int s; } class A { int f(B b) { return b.s; } }|};
  terr ~substr:"via class name"
    {|class B { int i; } class A { int f() { return B.i; } }|};
  terr ~substr:"instance method"
    {|class B { void m() {} } class A { void f() { B.m(); } }|}

let ty_access_control () =
  terr ~substr:"not accessible"
    {|class B { private int x; } class A { int f(B b) { return b.x; } }|};
  terr ~substr:"not accessible"
    {|class B { private void m() {} } class A { void f(B b) { b.m(); } }|};
  terr ~substr:"not accessible"
    {|class B { protected int x; } class A { int f(B b) { return b.x; } }|};
  (* protected IS accessible from a subclass *)
  ignore
    (Jv_lang.Compile.compile_program
       {|class B { protected int x; } class A extends B { int f() { return x; } }|});
  (* and private IS accessible in transformer mode (the JastAdd hack) *)
  ignore
    (Jv_lang.Compile.compile
       ~mode:Jv_lang.Compile.Transformer
       ~extra:
         (Jv_lang.Compile.compile_program {|class B { private int x; }|})
       {|class T { static int peek(B b) { return b.x; } }|})

let ty_final () =
  terr ~substr:"final"
    {|class A { final int x; void f() { x = 3; } }|};
  (* final fields may be assigned in the declaring class's constructor *)
  ignore
    (Jv_lang.Compile.compile_program
       {|class A { final int x; A() { x = 3; } }|});
  (* transformer mode may assign final fields anywhere *)
  ignore
    (Jv_lang.Compile.compile ~mode:Jv_lang.Compile.Transformer
       ~extra:(Jv_lang.Compile.compile_program {|class B { final int x; B() { x = 1; } }|})
       {|class T { static void set(B b) { b.x = 9; } }|})

let ty_control () =
  terr ~substr:"break outside loop" {|class A { void f() { break; } }|};
  terr ~substr:"continue outside loop" {|class A { void f() { continue; } }|};
  terr ~substr:"not all control paths return"
    {|class A { int f(boolean b) { if (b) { return 1; } } }|};
  terr ~substr:"void method returns a value"
    {|class A { void f() { return 3; } }|};
  terr ~substr:"missing return value" {|class A { int f() { return; } }|};
  terr ~substr:"this in static context"
    {|class A { static A f() { return this; } }|};
  terr ~substr:"instance field"
    {|class A { int x; static int f() { return x; } }|};
  terr ~substr:"no effect" {|class A { void f() { 1 + 2; } }|};
  terr ~substr:"assignment used as a value"
    {|class A { void f() { int x = 0; int y = x = 3; } }|}

let ty_ctors () =
  terr ~substr:"must call super"
    {|class B { B(int x) {} } class A extends B { A() {} }|};
  (* explicit super() selects the right ctor *)
  ignore
    (Jv_lang.Compile.compile_program
       {|class B { int v; B(int x) { v = x; } }
         class A extends B { A() { super(7); } }|});
  terr ~substr:"only allowed as the first statement"
    {|class A { void f() { super(); } }|};
  terr ~substr:"no applicable overload"
    {|class B { B(int x) {} } class A { void f() { B b = new B(); } }|}

let ty_overloads () =
  (* exact-type overloads resolve by argument types *)
  Helpers.check_output ~expected:"int:5 str:hi\n"
    {|
class A {
  static String f(int x) { return "int:" + x; }
  static String f(String s) { return "str:" + s; }
}
class Main {
  static void main() { Sys.println(A.f(5) + " " + A.f("hi")); }
}
|};
  (* most-specific wins *)
  Helpers.check_output ~expected:"dog\n"
    {|
class Animal {}
class Dog extends Animal {}
class A {
  static String f(Animal a) { return "animal"; }
  static String f(Dog d) { return "dog"; }
}
class Main {
  static void main() { Sys.println(A.f(new Dog())); }
}
|};
  (* ambiguity is rejected *)
  terr ~substr:"ambiguous"
    {|
class A {
  static void f(Object a, String b) {}
  static void f(String a, Object b) {}
  static void g() { f(null, null); }
}
|}

let suite =
  [
    Alcotest.test_case "lexer basics" `Quick lex_basics;
    Alcotest.test_case "lexer strings" `Quick lex_strings;
    Alcotest.test_case "lexer comments" `Quick lex_comments;
    Alcotest.test_case "lexer errors" `Quick lex_errors;
    Alcotest.test_case "lexer positions" `Quick lex_positions;
    Alcotest.test_case "parser classes" `Quick parser_classes;
    Alcotest.test_case "parser precedence" `Quick parser_precedence;
    Alcotest.test_case "parser cast disambiguation" `Quick
      parser_cast_disambiguation;
    Alcotest.test_case "parser decl vs expr" `Quick parser_decl_vs_expr;
    Alcotest.test_case "parser for variants" `Quick parser_for_variants;
    Alcotest.test_case "parser ctor vs method" `Quick parser_ctor_vs_method;
    Alcotest.test_case "parser modifiers" `Quick parser_modifiers;
    Alcotest.test_case "parser errors" `Quick parser_errors;
    Alcotest.test_case "type mismatches" `Quick ty_mismatches;
    Alcotest.test_case "name errors" `Quick ty_names;
    Alcotest.test_case "member errors" `Quick ty_members;
    Alcotest.test_case "access control" `Quick ty_access_control;
    Alcotest.test_case "final fields" `Quick ty_final;
    Alcotest.test_case "control flow checks" `Quick ty_control;
    Alcotest.test_case "constructors" `Quick ty_ctors;
    Alcotest.test_case "overload resolution" `Quick ty_overloads;
  ]
