(* Workload-driver tests: the scripted client against a MiniJava echo
   server. *)

module VM = Jv_vm
module A = Jv_apps

let echo_server =
  {|
class Handler {
  int conn;
  Handler(int c) { conn = c; }
  void run() {
    while (true) {
      String line = Net.recvLine(conn);
      if (line == null) { Net.close(conn); return; }
      if (line.equals("BAD")) { Net.send(conn, "500 nope"); }
      else { Net.send(conn, "200 " + line); }
    }
  }
}
class Main {
  static void main() {
    int l = Net.listen(9000);
    while (true) {
      int c = Net.accept(l);
      Thread.spawn(new Handler(c));
    }
  }
}
|}

let boot () =
  let vm = VM.Vm.create ~config:Helpers.test_config () in
  VM.Vm.boot vm (Jv_lang.Compile.compile_program echo_server);
  ignore (VM.Vm.spawn_main vm ~main_class:"Main");
  VM.Vm.run vm ~rounds:3;
  vm

let sessions_complete () =
  let vm = boot () in
  let w =
    A.Workload.attach vm ~port:9000 ~script:[ "a"; "b"; "c" ] ~concurrency:2
      ~max_sessions:5 ()
  in
  VM.Vm.run vm ~rounds:80;
  Alcotest.(check int) "sessions" 5 w.A.Workload.completed_sessions;
  Alcotest.(check int) "requests" 15 w.A.Workload.completed_requests;
  Alcotest.(check int) "errors" 0 w.A.Workload.errors;
  Alcotest.(check int) "none left active" 0 (List.length w.A.Workload.active);
  Alcotest.(check bool) "latency measured" true
    (A.Workload.mean_latency_rounds w > 0.0)

let errors_counted () =
  let vm = boot () in
  let w =
    A.Workload.attach vm ~port:9000 ~script:[ "ok"; "BAD"; "ok" ]
      ~concurrency:1 ~max_sessions:3 ()
  in
  VM.Vm.run vm ~rounds:80;
  Alcotest.(check int) "errors counted" 3 w.A.Workload.errors;
  Alcotest.(check int) "requests" 9 w.A.Workload.completed_requests

let concurrency_bounded () =
  let vm = boot () in
  let w =
    A.Workload.attach vm ~port:9000
      ~script:(List.init 30 (fun i -> "x" ^ string_of_int i))
      ~concurrency:3 ()
  in
  for _ = 1 to 30 do
    VM.Vm.run vm ~rounds:1;
    Alcotest.(check bool) "never more than 3 active" true
      (List.length w.A.Workload.active <= 3)
  done;
  Alcotest.(check bool) "ramped up" true (List.length w.A.Workload.active >= 2)

let detach_stops_traffic () =
  let vm = boot () in
  let w =
    A.Workload.attach vm ~port:9000
      ~script:(List.init 50 (fun _ -> "ping"))
      ~concurrency:2 ()
  in
  VM.Vm.run vm ~rounds:20;
  let before = w.A.Workload.completed_requests in
  Alcotest.(check bool) "made progress" true (before > 0);
  A.Workload.detach vm w;
  VM.Vm.run vm ~rounds:20;
  Alcotest.(check int) "no more requests" before
    w.A.Workload.completed_requests

let unserved_port_waits () =
  (* attaching to a port nobody listens on must not crash or spin-fail *)
  let vm = boot () in
  let w =
    A.Workload.attach vm ~port:9999 ~script:[ "x" ] ~concurrency:2 ()
  in
  VM.Vm.run vm ~rounds:20;
  Alcotest.(check int) "nothing completed" 0 w.A.Workload.completed_sessions;
  A.Workload.detach vm w

let suite =
  [
    Alcotest.test_case "sessions complete" `Quick sessions_complete;
    Alcotest.test_case "errors counted" `Quick errors_counted;
    Alcotest.test_case "concurrency bounded" `Quick concurrency_bounded;
    Alcotest.test_case "detach stops traffic" `Quick detach_stops_traffic;
    Alcotest.test_case "unserved port waits" `Quick unserved_port_waits;
  ]
