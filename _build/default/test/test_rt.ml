(* Runtime class metadata tests: field layouts, TIB/vslot inheritance,
   JTOC slots, and renaming — the machinery updates rewire. *)

module VM = Jv_vm
module CF = Jv_classfile

let prog =
  {|
class A {
  int a1;
  String a2;
  static int sa;
  int getA1() { return a1; }
  void setA1(int v) { a1 = v; }
  private int secret() { return 1; }
}
class B extends A {
  int b1;
  static boolean sb;
  int getA1() { return a1 + 100; }
  int getB1() { return b1; }
}
class C extends B {
  int c1;
}
class Main { static void main() { } }
|}

let vm () =
  let vm = VM.Vm.create ~config:Helpers.test_config () in
  VM.Vm.boot vm (Jv_lang.Compile.compile_program prog);
  vm

let layouts () =
  let vm = vm () in
  let a = VM.Rt.require_class vm.VM.State.reg "A" in
  let b = VM.Rt.require_class vm.VM.State.reg "B" in
  let c = VM.Rt.require_class vm.VM.State.reg "C" in
  Alcotest.(check int) "A size" (2 + 2) a.VM.Rt.size_words;
  Alcotest.(check int) "B size" (2 + 3) b.VM.Rt.size_words;
  Alcotest.(check int) "C size" (2 + 4) c.VM.Rt.size_words;
  (* inherited fields keep their offsets in subclasses *)
  let off cls name =
    match VM.Rt.find_field_info cls name with
    | Some fi -> fi.VM.Rt.fi_offset
    | None -> Alcotest.failf "no field %s" name
  in
  Alcotest.(check int) "a1 in A" (off a "a1") (off c "a1");
  Alcotest.(check int) "a2 in B" (off a "a2") (off b "a2");
  Alcotest.(check bool) "b1 after a2" true (off b "b1" > off b "a2");
  Alcotest.(check bool) "c1 last" true (off c "c1" > off c "b1")

let tib_inheritance () =
  let vm = vm () in
  let a = VM.Rt.require_class vm.VM.State.reg "A" in
  let b = VM.Rt.require_class vm.VM.State.reg "B" in
  let c = VM.Rt.require_class vm.VM.State.reg "C" in
  (* private methods never enter the dispatch table *)
  Alcotest.(check (option int)) "secret not virtual" None
    (VM.Rt.find_vslot a "secret()I");
  (* overridden method shares the slot; the TIB entry differs *)
  let slot cls = Option.get (VM.Rt.find_vslot cls "getA1()I") in
  Alcotest.(check int) "same slot A/B" (slot a) (slot b);
  Alcotest.(check int) "same slot B/C" (slot b) (slot c);
  Alcotest.(check bool) "B overrides" true
    (a.VM.Rt.tib.(slot a) <> b.VM.Rt.tib.(slot b));
  (* C inherits B's implementation *)
  Alcotest.(check int) "C inherits B's getA1" b.VM.Rt.tib.(slot b)
    c.VM.Rt.tib.(slot c);
  (* B's new virtual gets a fresh slot beyond A's table *)
  let gb = Option.get (VM.Rt.find_vslot b "getB1()I") in
  Alcotest.(check bool) "new slot appended" true
    (gb >= Array.length a.VM.Rt.tib)

let statics_get_distinct_slots () =
  let vm = vm () in
  let a = VM.Rt.require_class vm.VM.State.reg "A" in
  let b = VM.Rt.require_class vm.VM.State.reg "B" in
  let sa =
    Option.get (VM.Rt.find_static_info vm.VM.State.reg a "sa")
  in
  let sb =
    Option.get (VM.Rt.find_static_info vm.VM.State.reg b "sb")
  in
  Alcotest.(check bool) "distinct JTOC slots" true
    (sa.VM.Rt.si_slot <> sb.VM.Rt.si_slot);
  (* static resolution walks the hierarchy *)
  let via_b = Option.get (VM.Rt.find_static_info vm.VM.State.reg b "sa") in
  Alcotest.(check int) "sa via B" sa.VM.Rt.si_slot via_b.VM.Rt.si_slot

let subtype_ids () =
  let vm = vm () in
  let reg = vm.VM.State.reg in
  let id n = (VM.Rt.require_class reg n).VM.Rt.cid in
  Alcotest.(check bool) "C <: A" true
    (VM.Rt.is_subclass_id reg ~sub:(id "C") ~super:(id "A"));
  Alcotest.(check bool) "A not <: C" false
    (VM.Rt.is_subclass_id reg ~sub:(id "A") ~super:(id "C"));
  Alcotest.(check bool) "A <: Object" true
    (VM.Rt.is_subclass_id reg ~sub:(id "A") ~super:(id "Object"));
  Alcotest.(check bool) "refl" true
    (VM.Rt.is_subclass_id reg ~sub:(id "B") ~super:(id "B"))

let rename_rebinds () =
  let vm = vm () in
  let reg = vm.VM.State.reg in
  let a = VM.Rt.require_class reg "A" in
  Hashtbl.remove reg.VM.Rt.by_name "A";
  a.VM.Rt.name <- "v1_A";
  Hashtbl.replace reg.VM.Rt.by_name "v1_A" a.VM.Rt.cid;
  Alcotest.(check bool) "old name gone" true (VM.Rt.find_class reg "A" = None);
  (match VM.Rt.find_class reg "v1_A" with
  | Some c -> Alcotest.(check int) "same cid" a.VM.Rt.cid c.VM.Rt.cid
  | None -> Alcotest.fail "rename lost the class");
  (* field offsets survive the rename: old-object layout stays readable *)
  match VM.Rt.find_field_info a "a1" with
  | Some fi -> Alcotest.(check int) "offset stable" 2 fi.VM.Rt.fi_offset
  | None -> Alcotest.fail "field lost"

let method_resolution_order () =
  let vm = vm () in
  let reg = vm.VM.State.reg in
  let c = VM.Rt.require_class reg "C" in
  let msig = { CF.Types.params = []; ret = CF.Types.TInt } in
  (* resolving getA1 from C finds B's override, not A's original *)
  match VM.Rt.resolve_method reg c "getA1" msig with
  | Some m ->
      let owner = VM.Rt.class_by_id reg m.VM.Rt.owner in
      Alcotest.(check string) "most-derived wins" "B" owner.VM.Rt.name
  | None -> Alcotest.fail "no getA1"

let suite =
  [
    Alcotest.test_case "field layouts" `Quick layouts;
    Alcotest.test_case "TIB inheritance" `Quick tib_inheritance;
    Alcotest.test_case "static JTOC slots" `Quick statics_get_distinct_slots;
    Alcotest.test_case "runtime subtyping" `Quick subtype_ids;
    Alcotest.test_case "rename rebinds" `Quick rename_rebinds;
    Alcotest.test_case "method resolution order" `Quick
      method_resolution_order;
  ]
