(* Execution-engine tests: JIT resolution, inlining, adaptive
   recompilation, dispatch, OSR mechanics, and interpreter edge cases. *)

module VM = Jv_vm
module CF = Jv_classfile

(* --- adaptive compilation ----------------------------------------------------- *)

let adaptive_recompilation () =
  (* a hot method must cross the opt threshold and be recompiled *)
  let config =
    { Helpers.test_config with VM.State.opt_threshold = 10 }
  in
  let vm =
    Helpers.run_source ~config
      {|
class Math {
  static int sq(int x) { return x * x; }
}
class Main {
  static void main() {
    int acc = 0;
    for (int i = 0; i < 100; i = i + 1) { acc = acc + Math.sq(i); }
    Sys.println("acc=" + acc);
  }
}
|}
  in
  let stats = VM.Vm.stats vm in
  Alcotest.(check bool) "opt compiled something" true
    (stats.VM.Vm.opt_compile_count > 0);
  if not (Helpers.contains (VM.Vm.output vm) "acc=328350") then
    Alcotest.fail "wrong result"

let opt_code_inlines () =
  let config = { Helpers.test_config with VM.State.opt_threshold = 5 } in
  let vm =
    Helpers.run_source ~config
      {|
class Math {
  static int sq(int x) { return x * x; }
  static int poly(int x) { return sq(x) + sq(x + 1); }
}
class Main {
  static void main() {
    int acc = 0;
    for (int i = 0; i < 50; i = i + 1) { acc = acc + Math.poly(i); }
    Sys.println("acc=" + acc);
  }
}
|}
  in
  (* poly's opt code must record sq as inlined *)
  let poly =
    let cls = VM.Rt.require_class vm.VM.State.reg "Math" in
    match VM.Rt.resolve_method vm.VM.State.reg cls "poly"
            { CF.Types.params = [ CF.Types.TInt ]; ret = CF.Types.TInt }
    with
    | Some m -> m
    | None -> Alcotest.fail "no poly"
  in
  match poly.VM.Rt.opt_code with
  | None -> Alcotest.fail "poly was not opt-compiled"
  | Some c ->
      Alcotest.(check int) "one distinct inlinee" 1
        (List.length c.VM.Machine.inlined);
      (* base code is strictly 1:1; opt code is longer (spliced bodies) *)
      let base = Option.get poly.VM.Rt.base_code in
      Alcotest.(check bool) "opt longer than base" true
        (Array.length c.VM.Machine.code > Array.length base.VM.Machine.code)

(* inlined and non-inlined execution agree on random inputs *)
let inlining_equivalence_qcheck =
  QCheck.Test.make ~name:"opt (inlined) code computes like base code"
    ~count:20
    QCheck.(int_range (-50) 50)
    (fun n ->
      let src k thresh =
        Printf.sprintf
          {|
class F {
  static int h(int x) { return x * 3 - 1; }
  static int g(int x) { if (x < 0) { return h(-x); } return h(x) + 7; }
}
class Main {
  static void main() {
    int acc = 0;
    for (int i = 0; i < %d; i = i + 1) { acc = acc + F.g(%d + i); }
    Sys.println("r=" + acc);
  }
}
|}
          thresh k
      in
      (* run once with inlining effectively off (huge threshold) and once
         with aggressive opt *)
      let out1 =
        Helpers.output_of
          ~config:{ Helpers.test_config with VM.State.opt_threshold = 1_000_000 }
          (src n 40)
      in
      let out2 =
        Helpers.output_of
          ~config:{ Helpers.test_config with VM.State.opt_threshold = 2 }
          (src n 40)
      in
      String.equal out1 out2)

(* --- dispatch ------------------------------------------------------------------ *)

let override_dispatch_through_tib () =
  (* calls must dispatch on the dynamic type, through the TIB slot *)
  Helpers.check_output ~expected:"B.m A.n B.m\n"
    {|
class A {
  String m() { return "A.m"; }
  String n() { return "A.n"; }
  String call() { return m(); }
}
class B extends A {
  String m() { return "B.m"; }
}
class Main {
  static void main() {
    A a = new B();
    Sys.println(a.m() + " " + a.n() + " " + a.call());
  }
}
|}

let private_methods_direct () =
  (* private methods do not enter the TIB: same-name privates in a
     subclass are unrelated *)
  Helpers.check_output ~expected:"A.p B.p\n"
    {|
class A {
  private String p() { return "A.p"; }
  String viaA() { return p(); }
}
class B extends A {
  private String p() { return "B.p"; }
  String viaB() { return p(); }
}
class Main {
  static void main() {
    B b = new B();
    Sys.println(b.viaA() + " " + b.viaB());
  }
}
|}

let inherited_fields_share_offsets () =
  Helpers.check_output ~expected:"7 7\n"
    {|
class A { int x; }
class B extends A { int y; }
class Main {
  static void main() {
    B b = new B();
    b.x = 7;
    A a = b;
    Sys.println(a.x + " " + b.x);
  }
}
|}

(* --- traps ------------------------------------------------------------------------ *)

let stack_overflow_traps () =
  let vm =
    Helpers.run_source
      {|
class Main {
  static int inf(int n) { return inf(n + 1); }
  static void main() { Sys.println("" + inf(0)); }
}
|}
  in
  match (VM.Vm.stats vm).VM.Vm.traps with
  | [ (_, msg) ] ->
      if not (Helpers.contains msg "stack overflow") then
        Alcotest.failf "unexpected trap %s" msg
  | l -> Alcotest.failf "expected one trap, got %d" (List.length l)

let checkcast_trap () =
  let vm =
    Helpers.run_source
      {|
class A {}
class B extends A {}
class Main {
  static void main() {
    A a = new A();
    B b = (B) a;
    Sys.println("unreachable");
  }
}
|}
  in
  match (VM.Vm.stats vm).VM.Vm.traps with
  | [ (_, msg) ] ->
      if not (Helpers.contains msg "class cast") then
        Alcotest.failf "unexpected trap %s" msg
  | _ -> Alcotest.fail "expected a class-cast trap"

let null_cast_ok () =
  Helpers.check_output ~expected:"null ok\n"
    {|
class A {}
class B extends A {}
class Main {
  static void main() {
    A a = null;
    B b = (B) a;
    if (b == null) { Sys.println("null ok"); }
  }
}
|}

(* --- OSR mechanics -------------------------------------------------------------- *)

let osr_mid_loop () =
  (* manually OSR a parked frame and check it resumes correctly *)
  let src =
    {|
class Main {
  static void main() {
    int acc = 0;
    for (int i = 0; i < 50; i = i + 1) {
      acc = acc + i;
      Thread.yieldNow();
    }
    Sys.println("acc=" + acc);
  }
}
|}
  in
  let classes = Jv_lang.Compile.compile_program src in
  let vm = VM.Vm.create ~config:Helpers.test_config () in
  VM.Vm.boot vm classes;
  let t = VM.Vm.spawn_main vm ~main_class:"Main" in
  VM.Vm.run vm ~rounds:10;
  (match t.VM.State.frames with
  | [ fr ] ->
      let pc_before = fr.VM.State.pc in
      VM.Osr.replace_frame vm fr;
      (* base code is 1:1, so the pc is preserved exactly *)
      Alcotest.(check int) "pc preserved" pc_before fr.VM.State.pc
  | _ -> Alcotest.fail "expected main parked with one frame");
  ignore (VM.Vm.run_to_quiescence vm);
  Alcotest.(check string) "result intact" "acc=1225\n" (VM.Vm.output vm);
  Alcotest.(check int) "one OSR recorded" 1 (VM.Vm.stats vm).VM.Vm.osr_count

let osr_rejects_opt_frames () =
  let src =
    {|
class F { static int id(int x) { return x; } }
class Main {
  static void main() {
    int acc = 0;
    for (int i = 0; i < 1000; i = i + 1) {
      acc = acc + F.id(i);
      Thread.yieldNow();
    }
    Sys.println("acc=" + acc);
  }
}
|}
  in
  let classes = Jv_lang.Compile.compile_program src in
  let vm =
    VM.Vm.create
      ~config:{ Helpers.test_config with VM.State.opt_threshold = 5 }
      ()
  in
  VM.Vm.boot vm classes;
  let t = VM.Vm.spawn_main vm ~main_class:"Main" in
  VM.Vm.run vm ~rounds:10;
  match t.VM.State.frames with
  | [ fr ] ->
      (* hand the frame opt-compiled code, then try to OSR it *)
      let m = VM.Rt.method_by_uid vm.VM.State.reg fr.VM.State.f_method in
      let opt = VM.Jit.compile vm m VM.Machine.Opt in
      let fake =
        { fr with VM.State.code = opt }
      in
      Alcotest.check_raises "opt frames rejected"
        (VM.Osr.Osr_failed "cannot OSR an opt-compiled frame") (fun () ->
          VM.Osr.replace_frame vm fake)
  | _ -> Alcotest.fail "expected one frame"

(* --- misc -------------------------------------------------------------------------- *)

let max_stack_is_sufficient_qcheck =
  QCheck.Test.make ~name:"computed max stack fits deep expressions" ~count:10
    (QCheck.int_range 2 30)
    (fun depth ->
      (* right-leaning arithmetic: 1 + (2 + (3 + ...)) *)
      let rec expr i =
        if i >= depth then string_of_int i
        else Printf.sprintf "%d + (%s)" i (expr (i + 1))
      in
      let src =
        Printf.sprintf
          {| class Main { static void main() { Sys.println("" + (%s)); } } |}
          (expr 1)
      in
      let vm = Helpers.run_source src in
      (VM.Vm.stats vm).VM.Vm.traps = [])

let deterministic_execution () =
  (* the VM is deterministic: same program, same output, twice *)
  let src =
    {|
class W {
  int id;
  W(int i) { id = i; }
  void run() {
    for (int i = 0; i < 5; i = i + 1) {
      Sys.println("w" + id + ":" + (i * Sys.random(100)));
      Thread.yieldNow();
    }
  }
}
class Main {
  static void main() {
    Thread.spawn(new W(1));
    Thread.spawn(new W(2));
  }
}
|}
  in
  Alcotest.(check string) "deterministic" (Helpers.output_of src)
    (Helpers.output_of src)

let instr_disassembly () =
  (* smoke: machine instructions print *)
  let classes =
    Jv_lang.Compile.compile_program
      {| class Main { static void main() { Sys.println("x"); } } |}
  in
  let vm = VM.Vm.create ~config:Helpers.test_config () in
  VM.Vm.boot vm classes;
  let cls = VM.Rt.require_class vm.VM.State.reg "Main" in
  let m = cls.VM.Rt.methods.(0) in
  let code = VM.Jit.ensure_base vm m in
  Array.iter
    (fun i -> Alcotest.(check bool) "printable" true
        (String.length (VM.Machine.to_string i) > 0))
    code.VM.Machine.code

let suite =
  [
    Alcotest.test_case "adaptive recompilation" `Quick adaptive_recompilation;
    Alcotest.test_case "opt code inlines" `Quick opt_code_inlines;
    QCheck_alcotest.to_alcotest inlining_equivalence_qcheck;
    Alcotest.test_case "override dispatch (TIB)" `Quick
      override_dispatch_through_tib;
    Alcotest.test_case "private methods direct" `Quick private_methods_direct;
    Alcotest.test_case "inherited field offsets" `Quick
      inherited_fields_share_offsets;
    Alcotest.test_case "stack overflow trap" `Quick stack_overflow_traps;
    Alcotest.test_case "checkcast trap" `Quick checkcast_trap;
    Alcotest.test_case "null cast ok" `Quick null_cast_ok;
    Alcotest.test_case "OSR mid loop" `Quick osr_mid_loop;
    Alcotest.test_case "OSR rejects opt frames" `Quick osr_rejects_opt_frames;
    QCheck_alcotest.to_alcotest max_stack_is_sufficient_qcheck;
    Alcotest.test_case "deterministic execution" `Quick
      deterministic_execution;
    Alcotest.test_case "instruction printing" `Quick instr_disassembly;
  ]
