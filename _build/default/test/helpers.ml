(* Shared helpers for the test suites. *)

module CF = Jv_classfile
module VM = Jv_vm

(* small heap for unit tests: keeps VM creation cheap *)
let test_config =
  { VM.State.default_config with VM.State.heap_words = 1 lsl 18 }

(* Compile MiniJava source, boot a VM on it, run the main class to
   quiescence, and return the VM. *)
let run_source ?(config = test_config) ?(main = "Main") ?(rounds = 100_000)
    src =
  let classes = Jv_lang.Compile.compile_program src in
  let vm = VM.Vm.create ~config () in
  VM.Vm.boot vm classes;
  ignore (VM.Vm.spawn_main vm ~main_class:main);
  ignore (VM.Vm.run_to_quiescence ~max_rounds:rounds vm);
  vm

(* Run and return program output. *)
let output_of ?config ?main ?rounds src =
  VM.Vm.output (run_source ?config ?main ?rounds src)

let check_output ?config ?main ?rounds ~expected src =
  Alcotest.(check string) "program output" expected
    (output_of ?config ?main ?rounds src)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* Expect a compile failure whose message contains [substr]. *)
let check_compile_error ~substr src =
  match Jv_lang.Compile.compile_program src with
  | exception Jv_lang.Compile.Error msg ->
      if not (contains msg substr) then
        Alcotest.failf "error %S does not mention %S" msg substr
  | _ -> Alcotest.failf "expected compile error mentioning %S" substr
