(* UPT transformer-generation tests (paper §2.3): old-class stubs, default
   transformer source, override splicing, and prepare-time failures. *)

module J = Jvolve_core
module CF = Jv_classfile

let compile = Jv_lang.Compile.compile_program

let spec ?object_overrides ?class_overrides ?transformer_src ~tag v1 v2 =
  J.Spec.make ?object_overrides ?class_overrides
    ~transformer_src ~version_tag:tag ~old_program:(compile v1)
    ~new_program:(compile v2) ()

let v1 =
  {|
class Parent { int p; }
class User extends Parent {
  String name;
  int age;
  Gone buddy;
  Kept friend;
}
class Gone { int g; }
class Kept { int k; }
class Main { static void main() { } }
|}

(* Gone is deleted, User changes (age -> years), Kept survives unchanged *)
let v2 =
  {|
class Parent { int p; }
class User extends Parent {
  String name;
  int years;
  Kept friend;
}
class Kept { int k; }
class Main { static void main() { } }
|}

let stub_generation () =
  let s = spec ~tag:"9" v1 v2 in
  let stubs = J.Transformers.stubs_for s in
  let names = List.map (fun c -> c.CF.Cls.c_name) stubs in
  Alcotest.(check bool) "user stub" true (List.mem "v9_User" names);
  Alcotest.(check bool) "gone stub" true (List.mem "v9_Gone" names);
  let user = List.find (fun c -> c.CF.Cls.c_name = "v9_User") stubs in
  (* flattened layout: inherited Parent.p first, then declared fields *)
  Alcotest.(check (list string)) "flattened field order"
    [ "p"; "name"; "age"; "buddy"; "friend" ]
    (List.map (fun f -> f.CF.Cls.fd_name) user.CF.Cls.c_fields);
  (* methods are stripped: "the updated program may not call them" *)
  Alcotest.(check int) "no methods" 0 (List.length user.CF.Cls.c_methods);
  (* type mapping: deleted classes are renamed, surviving ones keep their
     (new) names *)
  let ty name =
    CF.Types.to_string
      (List.find (fun f -> f.CF.Cls.fd_name = name) user.CF.Cls.c_fields)
        .CF.Cls.fd_ty
  in
  Alcotest.(check string) "deleted class renamed" "v9_Gone" (ty "buddy");
  Alcotest.(check string) "kept class unrenamed" "Kept" (ty "friend");
  Alcotest.(check string) "string unrenamed" "String" (ty "name")

let default_source () =
  let s = spec ~tag:"9" v1 v2 in
  let src = J.Transformers.generate_source s in
  (* same-name same-type fields are copied; the changed one is not *)
  Alcotest.(check bool) "copies name" true
    (Helpers.contains src "to.name = from.name;");
  Alcotest.(check bool) "copies inherited p" true
    (Helpers.contains src "to.p = from.p;");
  Alcotest.(check bool) "copies friend" true
    (Helpers.contains src "to.friend = from.friend;");
  Alcotest.(check bool) "does not invent years" false
    (Helpers.contains src "to.years");
  Alcotest.(check bool) "has class transformer" true
    (Helpers.contains src "jvolveClass(User unused)");
  Alcotest.(check bool) "signature matches paper" true
    (Helpers.contains src "jvolveObject(User to, v9_User from)")

let default_compiles () =
  let s = spec ~tag:"9" v1 v2 in
  let p = J.Transformers.prepare s in
  Alcotest.(check string) "class name" "JvolveTransformers"
    p.J.Transformers.p_transformer.CF.Cls.c_name

let overrides_spliced () =
  let s =
    spec
      ~object_overrides:[ ("User", "    to.years = from.age;") ]
      ~class_overrides:[ ("User", "    Sys.println(\"migrating\");") ]
      ~tag:"9" v1 v2
  in
  let src = J.Transformers.generate_source s in
  Alcotest.(check bool) "object override used" true
    (Helpers.contains src "to.years = from.age;");
  Alcotest.(check bool) "default body replaced" false
    (Helpers.contains src "to.name = from.name;");
  Alcotest.(check bool) "class override used" true
    (Helpers.contains src "migrating");
  (* and the override must still compile *)
  ignore (J.Transformers.prepare s)

let custom_source_replaces_everything () =
  let src =
    {|
class JvolveTransformers {
  static void jvolveClass(User unused) { }
  static void jvolveObject(User to, v9_User from) {
    to.p = from.p;
    to.name = "renamed";
    to.years = from.age * 2;
  }
}
|}
  in
  let s = spec ~transformer_src:src ~tag:"9" v1 v2 in
  let p = J.Transformers.prepare s in
  Alcotest.(check string) "used verbatim" src p.J.Transformers.p_source

let prepare_failures () =
  (* missing transformer class *)
  (match
     J.Transformers.prepare
       (spec ~transformer_src:{|class NotTheRightName { }|} ~tag:"9" v1 v2)
   with
  | exception J.Transformers.Prepare_error e ->
      if not (Helpers.contains e "does not define") then
        Alcotest.failf "wrong error: %s" e
  | _ -> Alcotest.fail "expected prepare error");
  (* type errors in a custom transformer *)
  (match
     J.Transformers.prepare
       (spec
          ~transformer_src:
            {|class JvolveTransformers {
               static void jvolveObject(User to, v9_User from) {
                 to.nonexistent = 3;
               }
             }|}
          ~tag:"9" v1 v2)
   with
  | exception J.Transformers.Prepare_error e ->
      if not (Helpers.contains e "no field nonexistent") then
        Alcotest.failf "wrong error: %s" e
  | _ -> Alcotest.fail "expected prepare error");
  (* hierarchy permutation is rejected up front *)
  match
    J.Transformers.prepare
      (spec ~tag:"9" {|class A {} class B extends A {} class M { }|}
         {|class B {} class A extends B {} class M { }|})
  with
  | exception J.Transformers.Prepare_error e ->
      if not (Helpers.contains e "superclass") then
        Alcotest.failf "wrong error: %s" e
  | _ -> Alcotest.fail "expected prepare error"

(* transformer-mode compilation may read private fields of both versions *)
let transformer_accesses_private () =
  let v1p =
    {|class Secret { private int code; } class Main { static void main() {} }|}
  in
  let v2p =
    {|class Secret { private int code; private int extra; }
      class Main { static void main() {} }|}
  in
  let s =
    J.Spec.make
      ~object_overrides:
        [ ("Secret", "    to.code = from.code;\n    to.extra = from.code;") ]
      ~version_tag:"3" ~old_program:(compile v1p) ~new_program:(compile v2p)
      ()
  in
  ignore (J.Transformers.prepare s)

let suite =
  [
    Alcotest.test_case "stub generation" `Quick stub_generation;
    Alcotest.test_case "default source" `Quick default_source;
    Alcotest.test_case "default compiles" `Quick default_compiles;
    Alcotest.test_case "overrides spliced" `Quick overrides_spliced;
    Alcotest.test_case "custom source verbatim" `Quick
      custom_source_replaces_everything;
    Alcotest.test_case "prepare failures" `Quick prepare_failures;
    Alcotest.test_case "transformer reads privates" `Quick
      transformer_accesses_private;
  ]
