(* Bytecode verifier tests: hand-built class files with deliberately broken
   code, plus the key soundness property that everything the compiler emits
   verifies. *)

module CF = Jv_classfile
open CF

let meth ?(access = Access.make ~static:true ()) ?(max_locals = 4)
    ?(params = []) ?(ret = Types.TVoid) name code : Cls.meth =
  {
    Cls.md_name = name;
    md_sig = { Types.params; ret };
    md_access = access;
    md_max_locals = max_locals;
    md_code = Some (Array.of_list code);
  }

let cls ?(fields = []) name methods : Cls.t =
  { Cls.c_name = name; c_super = Types.object_class; c_fields = fields;
    c_methods = methods }

let program classes = Cls.program_of_list (Builtins.all @ classes)

let expect_error ~substr classes =
  match Verifier.verify_program (program classes) with
  | [] -> Alcotest.failf "expected verification error mentioning %S" substr
  | errs ->
      if not (List.exists (fun e -> Helpers.contains e substr) errs) then
        Alcotest.failf "errors %s do not mention %S"
          (String.concat " | " errs)
          substr

let expect_ok classes =
  match Verifier.verify_program (program classes) with
  | [] -> ()
  | errs -> Alcotest.failf "unexpected errors: %s" (String.concat " | " errs)

let field ?(access = Access.make ()) name ty : Cls.field =
  { Cls.fd_name = name; fd_ty = ty; fd_access = access }

(* --- stack discipline --------------------------------------------------- *)

let stack_underflow () =
  expect_error ~substr:"pop from empty"
    [ cls "A" [ meth "f" [ Instr.Pop; Instr.Return ] ] ]

let unbalanced_merge () =
  (* one branch pushes, the other does not: depths disagree at the join *)
  expect_error ~substr:"depth mismatch"
    [
      cls "A"
        [
          meth "f"
            [
              Instr.Const_bool true (* 0 *);
              Instr.If_true 3 (* 1 *);
              Instr.Const_int 1 (* 2 *);
              Instr.Return (* 3: reached with depth 0 and depth 1 *);
            ];
        ];
    ]

let type_confusion () =
  expect_error ~substr:"expects int"
    [ cls "A" [ meth "f" [ Instr.Const_null; Instr.Neg; Instr.Return ] ] ];
  expect_error ~substr:"expects a reference"
    [ cls "A" [ meth "f" [ Instr.Const_int 1; Instr.Const_int 2; Instr.Acmp_eq;
                           Instr.Pop; Instr.Return ] ] ];
  expect_error ~substr:"conditional branch"
    [ cls "A" [ meth "f" [ Instr.Const_int 1; Instr.If_true 0; Instr.Return ] ] ]

let branch_targets () =
  expect_error ~substr:"out of range"
    [ cls "A" [ meth "f" [ Instr.Goto 99 ] ] ];
  expect_error ~substr:"falls off the end"
    [ cls "A" [ meth "f" [ Instr.Const_int 1; Instr.Pop ] ] ]

let locals_checks () =
  expect_error ~substr:"out of range"
    [ cls "A" [ meth ~max_locals:1 "f" [ Instr.Load 5; Instr.Pop; Instr.Return ] ] ];
  expect_error ~substr:"uninitialized local"
    [ cls "A" [ meth "f" [ Instr.Load 0; Instr.Pop; Instr.Return ] ] ];
  (* a local only initialized on one path may not be read after the join *)
  expect_ok
    [
      cls "A"
        [
          meth ~params:[ Types.TBool ] "f"
            [
              Instr.Load 0;
              Instr.If_false 4;
              Instr.Const_int 7;
              Instr.Store 1;
              Instr.Return;
            ];
        ];
    ]

let return_checks () =
  expect_error ~substr:"void return from non-void"
    [ cls "A" [ meth ~ret:Types.TInt "f" [ Instr.Return ] ] ];
  expect_error ~substr:"value return from void"
    [ cls "A" [ meth "f" [ Instr.Const_int 1; Instr.Return_val ] ] ];
  expect_error ~substr:"return value"
    [
      cls "A"
        [ meth ~ret:Types.TInt "f" [ Instr.Const_null; Instr.Return_val ] ];
    ]

(* --- member resolution and access ----------------------------------------- *)

let fref c n ty = { Instr.f_class = c; f_name = n; f_ty = ty }

let member_resolution () =
  expect_error ~substr:"unresolved field"
    [
      cls "A"
        [
          meth "f"
            [ Instr.Get_static (fref "A" "nope" Types.TInt); Instr.Pop;
              Instr.Return ];
        ];
    ];
  expect_error ~substr:"reference says"
    [
      cls ~fields:[ field ~access:(Access.make ~static:true ()) "x" Types.TInt ]
        "A"
        [
          meth "f"
            [ Instr.Get_static (fref "A" "x" Types.TBool); Instr.Pop;
              Instr.Return ];
        ];
    ];
  expect_error ~substr:"static-ness mismatch"
    [
      cls ~fields:[ field "x" Types.TInt ] "A"
        [
          meth "f"
            [ Instr.Get_static (fref "A" "x" Types.TInt); Instr.Pop;
              Instr.Return ];
        ];
    ];
  expect_error ~substr:"unresolved method"
    [
      cls "A"
        [
          meth "f"
            [
              Instr.Invoke_static
                { Instr.m_class = "A"; m_name = "nope";
                  m_sig = { Types.params = []; ret = Types.TVoid } };
              Instr.Return;
            ];
        ];
    ]

let access_enforcement () =
  let priv =
    cls
      ~fields:
        [ field ~access:(Access.make ~visibility:Access.Private ~static:true ())
            "secret" Types.TInt ]
      "B" []
  in
  let snoop =
    cls "A"
      [
        meth "f"
          [ Instr.Get_static (fref "B" "secret" Types.TInt); Instr.Pop;
            Instr.Return ];
      ]
  in
  expect_error ~substr:"illegal access" [ priv; snoop ];
  (* the same bytecode passes in Transformer mode: the paper's JastAdd
     hack, accepted by the VM "in this special circumstance" *)
  match
    Verifier.verify_program ~mode:Verifier.Transformer (program [ priv; snoop ])
  with
  | [] -> ()
  | errs -> Alcotest.failf "transformer mode rejected: %s" (String.concat "|" errs)

let final_enforcement () =
  let classes =
    [
      cls
        ~fields:
          [ field ~access:(Access.make ~static:true ~final:true ()) "k"
              Types.TInt ]
        "B" [];
      cls "A"
        [
          meth "f"
            [ Instr.Const_int 3; Instr.Put_static (fref "B" "k" Types.TInt);
              Instr.Return ];
        ];
    ]
  in
  expect_error ~substr:"final" classes;
  (match
     Verifier.verify_program ~mode:Verifier.Transformer (program classes)
   with
  | [] -> ()
  | errs -> Alcotest.failf "transformer mode rejected: %s" (String.concat "|" errs))

(* --- structural well-formedness -------------------------------------------- *)

let structure () =
  expect_error ~substr:"unknown superclass"
    [ { Cls.c_name = "A"; c_super = "Nope"; c_fields = []; c_methods = [] } ];
  expect_error ~substr:"narrows visibility"
    [
      cls "B" [ meth ~access:(Access.make ()) ~max_locals:1 "m" [ Instr.Return ] ];
      {
        Cls.c_name = "A";
        c_super = "B";
        c_fields = [];
        c_methods =
          [
            meth ~access:(Access.make ~visibility:Access.Private ())
              ~max_locals:1 "m" [ Instr.Return ];
          ];
      };
    ]

(* --- the soundness anchor: compiled code always verifies ------------------- *)

let compiler_output_verifies () =
  (* every test app version must verify — several hundred methods across
     25 program versions *)
  List.iter
    (fun (v : Jv_apps.Patching.versioned) ->
      List.iter
        (fun (_, src) ->
          (* compile_program itself verifies; also re-verify explicitly *)
          let classes = Jv_lang.Compile.compile_program src in
          match
            Verifier.verify_program (Cls.program_of_list (Builtins.all @ classes))
          with
          | [] -> ()
          | errs -> Alcotest.failf "verifier: %s" (String.concat "|" errs))
        v.Jv_apps.Patching.versions)
    [ Jv_apps.Miniweb.app; Jv_apps.Minimail.app; Jv_apps.Miniftp.app ]

let suite =
  [
    Alcotest.test_case "stack underflow" `Quick stack_underflow;
    Alcotest.test_case "unbalanced merge" `Quick unbalanced_merge;
    Alcotest.test_case "type confusion" `Quick type_confusion;
    Alcotest.test_case "branch targets" `Quick branch_targets;
    Alcotest.test_case "locals checks" `Quick locals_checks;
    Alcotest.test_case "return checks" `Quick return_checks;
    Alcotest.test_case "member resolution" `Quick member_resolution;
    Alcotest.test_case "access enforcement" `Quick access_enforcement;
    Alcotest.test_case "final enforcement" `Quick final_enforcement;
    Alcotest.test_case "structural checks" `Quick structure;
    Alcotest.test_case "compiler output verifies" `Quick
      compiler_output_verifies;
  ]
