(* Coverage of the builtin native methods (String, Sys, Net, Thread)
   through MiniJava programs. *)

let out = Helpers.output_of

let t name f = Alcotest.test_case name `Quick f

let string_basics () =
  Helpers.check_output ~expected:"11 HeWorld llo wor 4 -1\n"
    {|
class Main {
  static void main() {
    String s = "hello world";
    Sys.println("" + s.length() + " " + "He".concat("World") + " "
      + s.substring(2, 9) + " " + s.indexOf("o w") + " " + s.indexOf("zzz"));
  }
}
|}

let string_predicates () =
  Helpers.check_output ~expected:"t f t f t f\n"
    {|
class Main {
  static String b(boolean v) { if (v) { return "t"; } return "f"; }
  static void main() {
    String s = "hello world";
    Sys.println(b(s.startsWith("hell")) + " " + b(s.startsWith("world")) + " "
      + b(s.endsWith("rld")) + " " + b(s.endsWith("hello")) + " "
      + b(s.contains("lo w")) + " " + b(s.contains("low")));
  }
}
|}

let string_transformations () =
  Helpers.check_output ~expected:"[abc] HELLO->hello 104 42 0 -17\n"
    {|
class Main {
  static void main() {
    Sys.println("[" + "  abc  ".trim() + "] "
      + "HELLO->" + "HELLO".toLowerCase() + " "
      + "hello".charAt(0) + " "
      + "42".toInt() + " " + "junk".toInt() + " " + " -17 ".toInt());
  }
}
|}

let string_split_variants () =
  Helpers.check_output ~expected:"3:a/b/c 2:a/b,c 1:abc 2:/a\n"
    {|
class Main {
  static String render(String[] p) {
    String out = "" + p.length + ":";
    for (int i = 0; i < p.length; i = i + 1) {
      if (i > 0) { out = out + "/"; }
      out = out + p[i];
    }
    return out;
  }
  static void main() {
    Sys.println(render("a,b,c".split(",", 0)) + " "
      + render("a,b,c".split(",", 2)) + " "
      + render("abc".split(",", 0)) + " "
      + render(",a".split(",", 0)));
  }
}
|}

let string_equals_and_null () =
  Helpers.check_output ~expected:"t f f\n"
    {|
class Main {
  static String b(boolean v) { if (v) { return "t"; } return "f"; }
  static void main() {
    String x = "ab".concat("c");
    String nothing = null;
    Sys.println(b(x.equals("abc")) + " " + b(x.equals("abd")) + " "
      + b(x.equals(nothing)));
  }
}
|}

let string_ofint () =
  Helpers.check_output ~expected:"0 -5 123456789\n"
    {|
class Main {
  static void main() {
    Sys.println(String.ofInt(0) + " " + String.ofInt(-5) + " "
      + String.ofInt(123456789));
  }
}
|}

let substring_bounds_trap () =
  let vm =
    Helpers.run_source
      {|class Main { static void main() { Sys.println("ab".substring(1, 5)); } }|}
  in
  match (Jv_vm.Vm.stats vm).Jv_vm.Vm.traps with
  | [ (_, m) ] ->
      if not (Helpers.contains m "substring") then Alcotest.failf "trap: %s" m
  | _ -> Alcotest.fail "expected a substring trap"

let charat_bounds_trap () =
  let vm =
    Helpers.run_source
      {|class Main { static void main() { Sys.println("" + "ab".charAt(7)); } }|}
  in
  match (Jv_vm.Vm.stats vm).Jv_vm.Vm.traps with
  | [ (_, m) ] ->
      if not (Helpers.contains m "charAt") then Alcotest.failf "trap: %s" m
  | _ -> Alcotest.fail "expected a charAt trap"

let sys_time_and_random () =
  let o =
    out
      {|
class Main {
  static void main() {
    int t0 = Sys.time();
    Thread.sleep(5);
    int t1 = Sys.time();
    String later = "no";
    if (t1 > t0) { later = "yes"; }
    int r = Sys.random(10);
    String inRange = "no";
    if (r >= 0 && r < 10) { inRange = "yes"; }
    Sys.println(later + " " + inRange + " " + Sys.random(0));
  }
}
|}
  in
  Alcotest.(check string) "time advances, random in range" "yes yes 0\n" o

let sys_fail_traps () =
  let vm =
    Helpers.run_source
      {|class Main { static void main() { Sys.fail("deliberate"); } }|}
  in
  match (Jv_vm.Vm.stats vm).Jv_vm.Vm.traps with
  | [ (_, m) ] ->
      if not (Helpers.contains m "deliberate") then Alcotest.failf "trap: %s" m
  | _ -> Alcotest.fail "expected Sys.fail trap"

let spawn_requires_run () =
  let vm =
    Helpers.run_source
      {|class NoRun {} class Main { static void main() { Thread.spawn(new NoRun()); } }|}
  in
  match (Jv_vm.Vm.stats vm).Jv_vm.Vm.traps with
  | [ (_, m) ] ->
      if not (Helpers.contains m "has no run()") then
        Alcotest.failf "trap: %s" m
  | _ -> Alcotest.fail "expected spawn trap"

let spawn_null_traps () =
  let vm =
    Helpers.run_source
      {|class Main { static void main() { Thread.spawn(null); } }|}
  in
  match (Jv_vm.Vm.stats vm).Jv_vm.Vm.traps with
  | [ (_, m) ] ->
      if not (Helpers.contains m "spawn") then Alcotest.failf "trap: %s" m
  | _ -> Alcotest.fail "expected spawn(null) trap"

let net_end_to_end () =
  (* a MiniJava client and server talking over simnet inside one VM *)
  Helpers.check_output ~expected:"client got: echo:ping\nserver done\n"
    ~rounds:3000
    {|
class Server {
  void run() {
    int l = Net.listen(7777);
    int c = Net.accept(l);
    String line = Net.recvLine(c);
    Net.send(c, "echo:" + line);
    String next = Net.recvLine(c);
    if (next == null) { Net.close(c); Sys.println("server done"); }
  }
}
class Main {
  static void main() {
    Thread.spawn(new Server());
    Thread.sleep(2);
    int conn = Net.connectLoopback(7777);
    Net.send(conn, "ping");
    String resp = Net.recvLine(conn);
    Sys.println("client got: " + resp);
    Net.close(conn);
  }
}
|}

let double_listen_traps () =
  let vm =
    Helpers.run_source
      {|class Main { static void main() { int a = Net.listen(80); int b = Net.listen(80); } }|}
  in
  match (Jv_vm.Vm.stats vm).Jv_vm.Vm.traps with
  | [ (_, m) ] ->
      if not (Helpers.contains m "already bound") then
        Alcotest.failf "trap: %s" m
  | _ -> Alcotest.fail "expected double-bind trap"

let suite =
  [
    t "string basics" string_basics;
    t "string predicates" string_predicates;
    t "string transformations" string_transformations;
    t "string split variants" string_split_variants;
    t "string equals and null" string_equals_and_null;
    t "String.ofInt" string_ofint;
    t "substring bounds trap" substring_bounds_trap;
    t "charAt bounds trap" charat_bounds_trap;
    t "Sys.time and Sys.random" sys_time_and_random;
    t "Sys.fail traps" sys_fail_traps;
    t "spawn requires run()" spawn_requires_run;
    t "spawn null traps" spawn_null_traps;
    t "net end to end (in-VM client)" net_end_to_end;
    t "double listen traps" double_listen_traps;
  ]
