(* Stress scenarios: many threads, allocation churn, updates under
   pressure, and repeated collections — integrity over endurance. *)

module VM = Jv_vm
module J = Jvolve_core
module A = Jv_apps

let many_threads () =
  (* 30 workers hammering a shared queue through yields; the scheduler
     must be fair enough for all to finish, and the final tally exact *)
  let vm =
    Helpers.run_source ~rounds:4000
      {|
class Tally {
  static int sum = 0;
  static int done0 = 0;
}
class Worker {
  int id;
  Worker(int i) { id = i; }
  void run() {
    for (int i = 0; i < 40; i = i + 1) {
      Tally.sum = Tally.sum + 1;
      Thread.yieldNow();
    }
    Tally.done0 = Tally.done0 + 1;
    if (Tally.done0 == 30) { Sys.println("sum=" + Tally.sum); }
  }
}
class Main {
  static void main() {
    for (int i = 0; i < 30; i = i + 1) { Thread.spawn(new Worker(i)); }
  }
}
|}
  in
  Alcotest.(check string) "exact tally" "sum=1200\n" (VM.Vm.output vm);
  Alcotest.(check int) "no traps" 0 (List.length (VM.Vm.stats vm).VM.Vm.traps)

let allocation_churn_many_gcs () =
  (* a linked-list builder that repeatedly drops its list: dozens of
     collections, values intact at the end *)
  let config =
    { Helpers.test_config with VM.State.heap_words = 1 lsl 12 }
  in
  let vm =
    Helpers.run_source ~config ~rounds:20_000
      {|
class Node { int v; Node next; }
class Main {
  static int build(int n) {
    Node head = null;
    for (int i = 0; i < n; i = i + 1) {
      Node x = new Node();
      x.v = i;
      x.next = head;
      head = x;
    }
    int sum = 0;
    while (head != null) { sum = sum + head.v; head = head.next; }
    return sum;
  }
  static void main() {
    int total = 0;
    for (int round = 0; round < 200; round = round + 1) {
      total = total + build(100);
    }
    Sys.println("total=" + total);
  }
}
|}
  in
  Alcotest.(check string) "sums intact across GCs" "total=990000\n"
    (VM.Vm.output vm);
  Alcotest.(check bool) "many collections" true
    ((VM.Vm.stats vm).VM.Vm.gc_count > 5)

let update_under_churn () =
  (* the update's transforming GC races with heavy allocation from other
     threads; every Cell must carry its value across the layout change *)
  let v1 =
    {|
class Cell { int v; }
class Store {
  static Cell[] cells;
  static void init(int n) {
    cells = new Cell[n];
    for (int i = 0; i < n; i = i + 1) {
      Cell c = new Cell();
      c.v = i * 3;
      cells[i] = c;
    }
  }
  static int checksum() {
    int s = 0;
    for (int i = 0; i < cells.length; i = i + 1) { s = s + cells[i].v; }
    return s;
  }
}
class Churner {
  void run() {
    while (true) {
      int[] garbage = new int[64];
      garbage[0] = 1;
      Thread.yieldNow();
    }
  }
}
class Main {
  static void main() {
    Store.init(200);
    Thread.spawn(new Churner());
    Thread.spawn(new Churner());
    while (true) {
      Sys.println("sum=" + Store.checksum());
      Thread.sleep(4);
    }
  }
}
|}
  in
  let v2 =
    A.Patching.patch v1
      [ ( "class Cell { int v; }", "class Cell { int pad; int v; int gen; }" ) ]
  in
  let config =
    { Helpers.test_config with VM.State.heap_words = 1 lsl 14 }
  in
  let old_program = Jv_lang.Compile.compile_program v1 in
  let new_program = Jv_lang.Compile.compile_program v2 in
  let vm = VM.Vm.create ~config () in
  VM.Vm.boot vm old_program;
  ignore (VM.Vm.spawn_main vm ~main_class:"Main");
  VM.Vm.run vm ~rounds:30;
  let spec = J.Spec.make ~version_tag:"1" ~old_program ~new_program () in
  let h = J.Jvolve.update_now ~timeout_rounds:200 vm spec in
  (match h.J.Jvolve.h_outcome with
  | J.Jvolve.Applied t ->
      Alcotest.(check int) "200 cells transformed" 200
        t.J.Updater.u_transformed_objects
  | o -> Alcotest.failf "update: %s" (J.Jvolve.outcome_to_string o));
  VM.Vm.run vm ~rounds:60;
  (* checksum = sum 3i for i<200 = 59700, printed before AND after *)
  let lines =
    String.split_on_char '\n' (VM.Vm.output vm)
    |> List.filter (fun l -> l <> "")
  in
  Alcotest.(check bool) "several samples" true (List.length lines > 5);
  List.iter
    (fun l ->
      if l <> "sum=59700" then Alcotest.failf "corrupt checksum line %S" l)
    lines

let web_long_haul () =
  (* miniweb serving thousands of requests with a small heap: sustained
     collections under live connections *)
  let config =
    {
      A.Experience.default_config with
      VM.State.heap_words = 1 lsl 15;
    }
  in
  let vm = A.Experience.boot_version ~config A.Experience.web_desc ~version:"5.1.10" in
  let w =
    A.Workload.attach vm ~port:A.Miniweb.protocol_port
      ~script:A.Workload.web_script ~ok:A.Workload.web_ok ~concurrency:6 ()
  in
  VM.Vm.run vm ~rounds:2500;
  Alcotest.(check bool) "thousands served" true
    (w.A.Workload.completed_requests > 2000);
  Alcotest.(check int) "zero errors" 0 w.A.Workload.errors;
  Alcotest.(check bool) "GC exercised" true ((VM.Vm.stats vm).VM.Vm.gc_count > 3);
  Alcotest.(check int) "zero traps" 0 (List.length (VM.Vm.stats vm).VM.Vm.traps)

let repeated_collections_idempotent () =
  let vm =
    Helpers.run_source ~rounds:50
      {|
class Pair { int a; Pair other; }
class K { static Pair p; }
class Main {
  static void main() {
    K.p = new Pair();
    K.p.a = 11;
    Pair q = new Pair();
    q.a = 22;
    K.p.other = q;
    q.other = K.p;
    for (int i = 0; i < 30; i = i + 1) { Thread.yieldNow(); }
    Sys.println("" + K.p.a + " " + K.p.other.a + " " + K.p.other.other.a);
  }
}
|}
  in
  (* hammer the collector directly: a cyclic structure must survive any
     number of collections *)
  for _ = 1 to 25 do
    ignore (VM.Vm.gc vm)
  done;
  ignore (VM.Vm.run_to_quiescence vm);
  Alcotest.(check string) "cycle intact" "11 22 11\n" (VM.Vm.output vm)

let suite =
  [
    Alcotest.test_case "30 threads exact tally" `Quick many_threads;
    Alcotest.test_case "allocation churn, many GCs" `Quick
      allocation_churn_many_gcs;
    Alcotest.test_case "update under churn" `Quick update_under_churn;
    Alcotest.test_case "miniweb long haul, small heap" `Slow web_long_haul;
    Alcotest.test_case "repeated collections idempotent" `Quick
      repeated_collections_idempotent;
  ]
