(* Assembler / disassembler tests, including the round-trip property over
   every class file the compiler produces for the benchmark apps. *)

module CF = Jv_classfile

let eq_field (a : CF.Cls.field) (b : CF.Cls.field) = CF.Cls.equal_field a b

let eq_meth (a : CF.Cls.meth) (b : CF.Cls.meth) =
  CF.Cls.equal_meth_header a b
  && a.CF.Cls.md_max_locals = b.CF.Cls.md_max_locals
  && CF.Cls.equal_meth_code a b

let eq_cls (a : CF.Cls.t) (b : CF.Cls.t) =
  String.equal a.CF.Cls.c_name b.CF.Cls.c_name
  && String.equal a.CF.Cls.c_super b.CF.Cls.c_super
  && List.length a.CF.Cls.c_fields = List.length b.CF.Cls.c_fields
  && List.for_all2 eq_field a.CF.Cls.c_fields b.CF.Cls.c_fields
  && List.length a.CF.Cls.c_methods = List.length b.CF.Cls.c_methods
  && List.for_all2 eq_meth a.CF.Cls.c_methods b.CF.Cls.c_methods

let handwritten =
  {|
# a counter class, written directly in assembly
class Counter extends Object {
  field public value I
  field private static total I

  method public tick ()V locals=1 {
      yield_entry
      load 0
      load 0
      getfield Counter.value I
      const_int 1
      add
      putfield Counter.value I
      return
  }

  method public static sum (I)I locals=2 {
      yield_entry
      const_int 0
      store 1
    top:
      yield_backedge
      load 0
      const_int 0
      icmp_le
      if_true done
      load 1
      load 0
      add
      store 1
      load 0
      const_int 1
      sub
      store 0
      goto top
    done:
      load 1
      return_val
  }
}
|}

let assemble_handwritten () =
  match CF.Assembler.parse_program handwritten with
  | [ c ] ->
      Alcotest.(check string) "name" "Counter" c.CF.Cls.c_name;
      Alcotest.(check int) "fields" 2 (List.length c.CF.Cls.c_fields);
      Alcotest.(check int) "methods" 2 (List.length c.CF.Cls.c_methods);
      (* the assembled class verifies *)
      (match
         CF.Verifier.verify_program
           (CF.Cls.program_of_list (CF.Builtins.all @ [ c ]))
       with
      | [] -> ()
      | errs -> Alcotest.failf "verify: %s" (String.concat "|" errs))
  | _ -> Alcotest.fail "expected one class"

let assembled_code_runs () =
  (* run the hand-assembled sum() on the VM via a compiled driver *)
  let counter =
    match CF.Assembler.parse_program handwritten with
    | [ c ] -> c
    | _ -> Alcotest.fail "expected one class"
  in
  let driver =
    Jv_lang.Compile.compile ~extra:[ counter ]
      {|class Main { static void main() { Sys.println("sum=" + Counter.sum(10)); } }|}
  in
  let vm = Jv_vm.Vm.create ~config:Helpers.test_config () in
  Jv_vm.Vm.boot vm (counter :: driver);
  ignore (Jv_vm.Vm.spawn_main vm ~main_class:"Main");
  ignore (Jv_vm.Vm.run_to_quiescence vm);
  Alcotest.(check string) "output" "sum=55\n" (Jv_vm.Vm.output vm)

let roundtrip classes =
  let printed = CF.Assembler.print_program classes in
  let back = CF.Assembler.parse_program printed in
  if List.length back <> List.length classes then
    Alcotest.failf "class count changed: %d -> %d" (List.length classes)
      (List.length back);
  List.iter2
    (fun a b ->
      if not (eq_cls a b) then
        Alcotest.failf "class %s did not round-trip:\n%s" a.CF.Cls.c_name
          printed)
    classes back

let roundtrip_handwritten () =
  roundtrip (CF.Assembler.parse_program handwritten)

let roundtrip_compiler_output () =
  (* every class file of every app version round-trips *)
  List.iter
    (fun (v : Jv_apps.Patching.versioned) ->
      List.iter
        (fun (_, src) -> roundtrip (Jv_lang.Compile.compile_program src))
        v.Jv_apps.Patching.versions)
    [ Jv_apps.Miniweb.app; Jv_apps.Minimail.app; Jv_apps.Miniftp.app ]

let roundtrip_builtins () = roundtrip CF.Builtins.all

let error_reporting () =
  let cases =
    [
      ("class A {", "expected: class Name extends Super");
      ("class A extends Object {\n  field x I", "unexpected end");
      ("class A extends Object {\n  zap\n}", "unexpected zap");
      ( "class A extends Object {\n  method f ()V locals=0 {\n  blorp\n  }\n}",
        "unknown instruction blorp" );
      ( "class A extends Object {\n  method f ()V locals=0 {\n  goto nowhere\n\
        \  return\n  }\n}",
        "unknown label nowhere" );
      ("class A extends Object {\n  field x Q\n}", "bad type descriptor Q");
    ]
  in
  List.iter
    (fun (src, substr) ->
      match CF.Assembler.parse_program src with
      | _ -> Alcotest.failf "expected error mentioning %S" substr
      | exception CF.Assembler.Asm_error (m, _) ->
          if not (Helpers.contains m substr) then
            Alcotest.failf "error %S does not mention %S" m substr)
    cases

let descriptor_roundtrip_qcheck =
  let rec gen_ty depth st =
    match QCheck.Gen.int_range 0 (if depth = 0 then 2 else 3) st with
    | 0 -> CF.Types.TInt
    | 1 -> CF.Types.TBool
    | 2 ->
        CF.Types.TRef
          (List.nth [ "A"; "Foo"; "Object"; "String" ]
             (QCheck.Gen.int_range 0 3 st))
    | _ -> CF.Types.TArray (gen_ty (depth - 1) st)
  in
  QCheck.Test.make ~name:"type descriptors round trip" ~count:200
    (QCheck.make (gen_ty 3))
    (fun t ->
      CF.Types.equal_ty t (CF.Types.of_descriptor (CF.Types.descriptor t)))

let msig_roundtrip_qcheck =
  let rec gen_ty depth st =
    match QCheck.Gen.int_range 0 (if depth = 0 then 2 else 3) st with
    | 0 -> CF.Types.TInt
    | 1 -> CF.Types.TBool
    | 2 -> CF.Types.TRef "C"
    | _ -> CF.Types.TArray (gen_ty (depth - 1) st)
  in
  QCheck.Test.make ~name:"method descriptors round trip" ~count:200
    (QCheck.make
       QCheck.Gen.(
         tup2 (list_size (int_range 0 4) (gen_ty 2)) (gen_ty 2)))
    (fun (params, ret) ->
      let s = { CF.Types.params; ret } in
      CF.Types.equal_msig s
        (CF.Types.msig_of_descriptor (CF.Types.msig_descriptor s)))

let suite =
  [
    Alcotest.test_case "assemble handwritten" `Quick assemble_handwritten;
    Alcotest.test_case "assembled code runs" `Quick assembled_code_runs;
    Alcotest.test_case "roundtrip handwritten" `Quick roundtrip_handwritten;
    Alcotest.test_case "roundtrip compiler output" `Quick
      roundtrip_compiler_output;
    Alcotest.test_case "roundtrip builtins" `Quick roundtrip_builtins;
    Alcotest.test_case "error reporting" `Quick error_reporting;
    QCheck_alcotest.to_alcotest descriptor_roundtrip_qcheck;
    QCheck_alcotest.to_alcotest msig_roundtrip_qcheck;
  ]
