(* Baseline DSU systems: the method-body-only (HotSwap/E&C) updater and the
   lazy indirection-based (JDrums/DVM-style) updater. *)

module VM = Jv_vm
module J = Jvolve_core
module B = Jv_baseline

let compile = Jv_lang.Compile.compile_program

let boot ?(config = Helpers.test_config) src =
  let classes = compile src in
  let vm = VM.Vm.create ~config () in
  VM.Vm.boot vm classes;
  ignore (VM.Vm.spawn_main vm ~main_class:"Main");
  vm

let greeter v =
  Printf.sprintf
    {|
class Greeter { String greet() { return "%s"; } }
class Main {
  static void main() {
    Greeter g = new Greeter();
    for (int i = 0; i < 30; i = i + 1) { Sys.println(g.greet()); Thread.yieldNow(); }
  }
}
|}
    v

(* --- hotswap ------------------------------------------------------------- *)

let hotswap_applies_body_changes () =
  let vm = boot (greeter "v1") in
  VM.Vm.run vm ~rounds:5;
  let spec =
    J.Spec.make ~version_tag:"1"
      ~old_program:(compile (greeter "v1"))
      ~new_program:(compile (greeter "v2"))
      ()
  in
  (match B.Hotswap.apply vm spec with
  | B.Hotswap.Applied n -> Alcotest.(check int) "one body" 1 n
  | B.Hotswap.Unsupported e -> Alcotest.failf "unsupported: %s" e);
  ignore (VM.Vm.run_to_quiescence vm);
  let out = VM.Vm.output vm in
  Alcotest.(check bool) "old ran" true (Helpers.contains out "v1\n");
  Alcotest.(check bool) "new ran" true (Helpers.contains out "v2\n")

let hotswap_rejects_class_updates () =
  let v1 = {|class A { int x; } class Main { static void main() {} }|} in
  let v2 = {|class A { int x; int y; } class Main { static void main() {} }|} in
  let vm = boot v1 in
  let spec =
    J.Spec.make ~version_tag:"1" ~old_program:(compile v1)
      ~new_program:(compile v2) ()
  in
  match B.Hotswap.apply vm spec with
  | B.Hotswap.Unsupported e ->
      if not (Helpers.contains e "class signature changes") then
        Alcotest.failf "wrong reason: %s" e
  | B.Hotswap.Applied _ -> Alcotest.fail "must be unsupported"

let hotswap_rejects_added_classes () =
  let v1 = {|class Main { static void main() {} }|} in
  let v2 = {|class New {} class Main { static void main() {} }|} in
  let vm = boot v1 in
  let spec =
    J.Spec.make ~version_tag:"1" ~old_program:(compile v1)
      ~new_program:(compile v2) ()
  in
  match B.Hotswap.apply vm spec with
  | B.Hotswap.Unsupported e ->
      if not (Helpers.contains e "added classes") then
        Alcotest.failf "wrong reason: %s" e
  | B.Hotswap.Applied _ -> Alcotest.fail "must be unsupported"

(* --- lazy indirection ------------------------------------------------------ *)

let lazy_src_v1 =
  {|
class Box { int a; int b; }
class Store { static Box one; static Box two; }
class Reader {
  static int readOne() { return Store.one.a * 10 + Store.one.b; }
  static int readTwo() { return Store.two.a * 10 + Store.two.b; }
}
class Main {
  static void main() {
    Store.one = new Box();
    Store.one.a = 1; Store.one.b = 2;
    Store.two = new Box();
    Store.two.a = 3; Store.two.b = 4;
    for (int i = 0; i < 200; i = i + 1) { Thread.yieldNow(); }
  }
}
|}

let lazy_src_v2 =
  {|
class Box { int a; int b; int c; }
class Store { static Box one; static Box two; }
class Reader {
  static int readOne() { return Store.one.a * 10 + Store.one.b; }
  static int readTwo() { return Store.two.a * 10 + Store.two.b; }
}
class Main {
  static void main() {
    Store.one = new Box();
    Store.one.a = 1; Store.one.b = 2;
    Store.two = new Box();
    Store.two.a = 3; Store.two.b = 4;
    for (int i = 0; i < 200; i = i + 1) { Thread.yieldNow(); }
  }
}
|}

let indirection_config =
  { Helpers.test_config with VM.State.indirection_mode = true }

let call_reader vm name =
  let cls = VM.Rt.require_class vm.VM.State.reg "Reader" in
  match
    VM.Rt.resolve_method vm.VM.State.reg cls name
      { Jv_classfile.Types.params = []; ret = Jv_classfile.Types.TInt }
  with
  | Some m -> VM.Value.to_int (VM.Interp.call_sync vm m [||])
  | None -> Alcotest.fail ("no " ^ name)

let lazy_migrates_on_touch () =
  let vm = boot ~config:indirection_config lazy_src_v1 in
  VM.Vm.run vm ~rounds:5;
  let spec =
    J.Spec.make ~version_tag:"1" ~old_program:(compile lazy_src_v1)
      ~new_program:(compile lazy_src_v2) ()
  in
  let prepared = J.Transformers.prepare spec in
  let st =
    match B.Indirection.apply vm prepared with
    | Ok st -> st
    | Error e -> Alcotest.failf "lazy apply failed: %s" e
  in
  Alcotest.(check int) "nothing migrated yet" 0 st.B.Indirection.transformed;
  (* touching Box one migrates it (field values preserved) but not two *)
  Alcotest.(check int) "readOne" 12 (call_reader vm "readOne");
  Alcotest.(check int) "one migrated" 1 st.B.Indirection.transformed;
  Alcotest.(check int) "readTwo" 34 (call_reader vm "readTwo");
  Alcotest.(check int) "both migrated" 2 st.B.Indirection.transformed;
  (* subsequent touches hit the handle table, no re-migration *)
  Alcotest.(check int) "readOne again" 12 (call_reader vm "readOne");
  Alcotest.(check int) "still two" 2 st.B.Indirection.transformed;
  (* the tax is real: dereference checks accumulated *)
  Alcotest.(check bool) "deref checks counted" true
    (B.Indirection.deref_checks vm > 0)

let lazy_requires_indirection_mode () =
  let vm = boot lazy_src_v1 in
  VM.Vm.run vm ~rounds:5;
  let spec =
    J.Spec.make ~version_tag:"1" ~old_program:(compile lazy_src_v1)
      ~new_program:(compile lazy_src_v2) ()
  in
  match B.Indirection.apply vm (J.Transformers.prepare spec) with
  | Error e ->
      if not (Helpers.contains e "indirection_mode") then
        Alcotest.failf "wrong error: %s" e
  | Ok _ -> Alcotest.fail "must require indirection mode"

let lazy_survives_gc () =
  let vm = boot ~config:indirection_config lazy_src_v1 in
  VM.Vm.run vm ~rounds:5;
  let spec =
    J.Spec.make ~version_tag:"1" ~old_program:(compile lazy_src_v1)
      ~new_program:(compile lazy_src_v2) ()
  in
  (match B.Indirection.apply vm (J.Transformers.prepare spec) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "apply: %s" e);
  Alcotest.(check int) "readOne" 12 (call_reader vm "readOne");
  (* a collection moves both the old object and its migrated copy; the
     handle table must be rewritten *)
  ignore (VM.Vm.gc vm);
  Alcotest.(check int) "readOne after GC" 12 (call_reader vm "readOne");
  Alcotest.(check int) "readTwo after GC" 34 (call_reader vm "readTwo")

let suite =
  [
    Alcotest.test_case "hotswap applies body changes" `Quick
      hotswap_applies_body_changes;
    Alcotest.test_case "hotswap rejects class updates" `Quick
      hotswap_rejects_class_updates;
    Alcotest.test_case "hotswap rejects added classes" `Quick
      hotswap_rejects_added_classes;
    Alcotest.test_case "lazy migrates on touch" `Quick lazy_migrates_on_touch;
    Alcotest.test_case "lazy requires indirection mode" `Quick
      lazy_requires_indirection_mode;
    Alcotest.test_case "lazy survives GC" `Quick lazy_survives_gc;
  ]
