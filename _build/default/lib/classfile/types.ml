(* Type descriptors for the MiniJava class-file format.

   The type language mirrors the subset of Java that Jvolve updates operate
   over: machine integers, booleans, reference types naming a class, and
   (invariant) array types.  [TVoid] appears only in method return
   positions. *)

type ty =
  | TInt
  | TBool
  | TRef of string (* class name *)
  | TArray of ty
  | TVoid

(* A method signature.  Two methods with the same name and signature override
   one another; signatures are compared structurally. *)
type msig = { params : ty list; ret : ty }

let rec equal_ty a b =
  match (a, b) with
  | TInt, TInt | TBool, TBool | TVoid, TVoid -> true
  | TRef x, TRef y -> String.equal x y
  | TArray x, TArray y -> equal_ty x y
  | _ -> false

let equal_msig a b =
  List.length a.params = List.length b.params
  && List.for_all2 equal_ty a.params b.params
  && equal_ty a.ret b.ret

(* JVM-style descriptor strings, used for method mangling and diffing. *)
let rec descriptor = function
  | TInt -> "I"
  | TBool -> "Z"
  | TVoid -> "V"
  | TRef c -> "L" ^ c ^ ";"
  | TArray t -> "[" ^ descriptor t

let msig_descriptor { params; ret } =
  "(" ^ String.concat "" (List.map descriptor params) ^ ")" ^ descriptor ret

(* Parse a descriptor back into a type: the inverse of [descriptor].
   Returns the type and the number of characters consumed. *)
exception Bad_descriptor of string

let rec parse_descriptor (s : string) (i : int) : ty * int =
  if i >= String.length s then raise (Bad_descriptor s);
  match s.[i] with
  | 'I' -> (TInt, i + 1)
  | 'Z' -> (TBool, i + 1)
  | 'V' -> (TVoid, i + 1)
  | '[' ->
      let t, j = parse_descriptor s (i + 1) in
      (TArray t, j)
  | 'L' -> (
      match String.index_from_opt s i ';' with
      | None -> raise (Bad_descriptor s)
      | Some j -> (TRef (String.sub s (i + 1) (j - i - 1)), j + 1))
  | _ -> raise (Bad_descriptor s)

let of_descriptor s =
  let t, n = parse_descriptor s 0 in
  if n <> String.length s then raise (Bad_descriptor s);
  t

(* "(ILString;)V" -> msig *)
let msig_of_descriptor s =
  let n = String.length s in
  if n < 3 || s.[0] <> '(' then raise (Bad_descriptor s);
  let close =
    match String.index_opt s ')' with
    | Some c -> c
    | None -> raise (Bad_descriptor s)
  in
  let rec params i acc =
    if i >= close then List.rev acc
    else
      let t, j = parse_descriptor s i in
      if j > close then raise (Bad_descriptor s);
      params j (t :: acc)
  in
  let ps = params 1 [] in
  let ret, fin = parse_descriptor s (close + 1) in
  if fin <> n then raise (Bad_descriptor s);
  { params = ps; ret }

(* Human-readable form, used by the disassembler and error messages. *)
let rec to_string = function
  | TInt -> "int"
  | TBool -> "boolean"
  | TVoid -> "void"
  | TRef c -> c
  | TArray t -> to_string t ^ "[]"

let msig_to_string { params; ret } =
  Printf.sprintf "(%s)%s"
    (String.concat ", " (List.map to_string params))
    (to_string ret)

let pp_ty ppf t = Fmt.string ppf (to_string t)
let pp_msig ppf s = Fmt.string ppf (msig_to_string s)

let is_reference = function TRef _ | TArray _ -> true | _ -> false

(* Every class implicitly extends [object_class]; [string_class] is the
   built-in string type with native methods. *)
let object_class = "Object"
let string_class = "String"
let t_string = TRef string_class
let t_object = TRef object_class

(* Classes mentioned by a type: used by the UPT to compute which methods
   refer to updated classes. *)
let rec classes_of_ty acc = function
  | TInt | TBool | TVoid -> acc
  | TRef c -> c :: acc
  | TArray t -> classes_of_ty acc t

let classes_of_msig { params; ret } =
  List.fold_left classes_of_ty (classes_of_ty [] ret) params
