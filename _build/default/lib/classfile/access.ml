(* Access modifiers for fields and methods. *)

type visibility = Public | Protected | Private | Package

type t = {
  visibility : visibility;
  is_static : bool;
  is_final : bool;
  is_native : bool;
}

let make ?(visibility = Public) ?(static = false) ?(final = false)
    ?(native = false) () =
  { visibility; is_static = static; is_final = final; is_native = native }

let default = make ()
let static_public = make ~static:true ()

let equal a b =
  a.visibility = b.visibility
  && a.is_static = b.is_static
  && a.is_final = b.is_final
  && a.is_native = b.is_native

let visibility_to_string = function
  | Public -> "public"
  | Protected -> "protected"
  | Private -> "private"
  | Package -> ""

let to_string a =
  String.concat " "
    (List.filter
       (fun s -> s <> "")
       [
         visibility_to_string a.visibility;
         (if a.is_static then "static" else "");
         (if a.is_final then "final" else "");
         (if a.is_native then "native" else "");
       ])

let pp ppf a = Fmt.string ppf (to_string a)

(* Visibility check: may code in [from_class] access a member of [in_class]
   with visibility [vis]?  [same_hierarchy] tells whether [from_class] is a
   subclass of [in_class] (for [Protected]).  Package visibility is treated
   as program-global since MiniJava has a single package. *)
let accessible vis ~same_class ~same_hierarchy =
  match vis with
  | Public | Package -> true
  | Protected -> same_class || same_hierarchy
  | Private -> same_class
