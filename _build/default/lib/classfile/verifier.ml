(* Bytecode verifier: an abstract interpretation over the MiniJava bytecode
   that type-checks every method body against the class table.

   Jvolve's safety story (paper §1, §2.2) rests on two legs: (a) the bytecode
   of an updated program verifies, so a self-consistent new version cannot
   commit type errors, and (b) DSU safe points prevent old code from running
   against new layouts.  This module is leg (a).

   The verifier runs a standard dataflow fixpoint: for every instruction we
   keep the abstract state (operand-stack types + local-variable types) on
   entry, merge states at join points with a least-upper-bound, and check
   each instruction's stack discipline, member resolution and access
   rights.

   [mode]:
   - [Strict] is normal verification.
   - [Transformer] corresponds to the paper's JastAdd extension (§2.3): the
     Jvolve transformer class is allowed to ignore access modifiers and to
     assign [final] fields, and the VM must accept such bytecode "in this
     special circumstance". *)

type mode = Strict | Transformer

(* Abstract value types. *)
type rty = R_null | R_class of string | R_array of Types.ty

type vty = V_int | V_bool | V_ref of rty | V_uninit

let vty_of_ty = function
  | Types.TInt -> V_int
  | Types.TBool -> V_bool
  | Types.TRef c -> V_ref (R_class c)
  | Types.TArray t -> V_ref (R_array t)
  | Types.TVoid -> invalid_arg "vty_of_ty: void"

let vty_to_string = function
  | V_int -> "int"
  | V_bool -> "boolean"
  | V_ref R_null -> "null"
  | V_ref (R_class c) -> c
  | V_ref (R_array t) -> Types.to_string t ^ "[]"
  | V_uninit -> "<uninit>"

type state = { stack : vty list; locals : vty array }

exception Verify_error of string

let errf fmt = Printf.ksprintf (fun s -> raise (Verify_error s)) fmt

(* Subtyping on abstract values.  Arrays are invariant in their element type
   (MiniJava has no array covariance, so no store checks are needed) and are
   subtypes of Object. *)
let vty_subtype prog a b =
  match (a, b) with
  | V_int, V_int | V_bool, V_bool -> true
  | V_ref R_null, V_ref _ -> true
  | V_ref (R_class x), V_ref (R_class y) -> Cls.is_subclass prog ~sub:x ~super:y
  | V_ref (R_array x), V_ref (R_array y) -> Types.equal_ty x y
  | V_ref (R_array _), V_ref (R_class o) -> String.equal o Types.object_class
  | _ -> false

(* Least upper bound for merge points.  Incomparable scalar/ref mixes merge
   to [V_uninit], which is fine as long as the slot is never read. *)
let lub prog a b =
  if a = b then a
  else
    match (a, b) with
    | V_ref R_null, (V_ref _ as r) | (V_ref _ as r), V_ref R_null -> r
    | V_ref (R_class x), V_ref (R_class y) ->
        (* walk x's ancestry for the nearest common superclass *)
        let anc =
          match Cls.find_class prog x with
          | None -> [ Types.object_class ]
          | Some c -> List.map (fun a -> a.Cls.c_name) (Cls.ancestry prog c [])
        in
        let rec first = function
          | [] -> Types.object_class
          | cand :: rest ->
              if Cls.is_subclass prog ~sub:y ~super:cand then cand
              else first rest
        in
        V_ref (R_class (first anc))
    | V_ref (R_array x), V_ref (R_array y) when Types.equal_ty x y ->
        V_ref (R_array x)
    | V_ref _, V_ref _ -> V_ref (R_class Types.object_class)
    | _ -> V_uninit

let merge_states prog pc (a : state) (b : state) : state * bool =
  if List.length a.stack <> List.length b.stack then
    errf "pc %d: operand stack depth mismatch at merge (%d vs %d)" pc
      (List.length a.stack) (List.length b.stack);
  let changed = ref false in
  let stack =
    List.map2
      (fun x y ->
        let m = lub prog x y in
        if m <> x then changed := true;
        (if m = V_uninit then
           (* a live stack slot may never be poisoned *)
           errf "pc %d: incompatible stack types at merge (%s vs %s)" pc
             (vty_to_string x) (vty_to_string y));
        m)
      a.stack b.stack
  in
  let locals =
    Array.mapi
      (fun i x ->
        let m = lub prog x b.locals.(i) in
        if m <> x then changed := true;
        m)
      a.locals
  in
  ({ stack; locals }, !changed)

type ctx = {
  prog : Cls.program;
  mode : mode;
  cls : Cls.t; (* class being verified *)
  meth : Cls.meth;
}

let check_access ctx ~(member_vis : Access.visibility) ~declaring =
  match ctx.mode with
  | Transformer -> ()
  | Strict ->
      let same_class = String.equal ctx.cls.Cls.c_name declaring in
      let same_hierarchy =
        Cls.is_subclass ctx.prog ~sub:ctx.cls.Cls.c_name ~super:declaring
      in
      if not (Access.accessible member_vis ~same_class ~same_hierarchy) then
        errf "illegal access to %s member of %s from %s"
          (Access.visibility_to_string member_vis)
          declaring ctx.cls.Cls.c_name

let pop st pc =
  match st.stack with
  | [] -> errf "pc %d: pop from empty operand stack" pc
  | v :: rest -> (v, { st with stack = rest })

let pop_expect ctx st pc expected what =
  let v, st = pop st pc in
  if not (vty_subtype ctx.prog v expected) then
    errf "pc %d: %s expects %s, found %s" pc what (vty_to_string expected)
      (vty_to_string v);
  st

let pop_ref st pc what =
  let v, st = pop st pc in
  match v with
  | V_ref r -> (r, st)
  | _ -> errf "pc %d: %s expects a reference, found %s" pc what
           (vty_to_string v)

let push v st = { st with stack = v :: st.stack }

let resolve_field ctx pc (f : Instr.field_ref) ~want_static =
  match Cls.resolve_field ctx.prog f.Instr.f_class f.Instr.f_name with
  | None -> errf "pc %d: unresolved field %s" pc (Instr.field_ref_to_string f)
  | Some (decl, fd) ->
      if not (Types.equal_ty fd.Cls.fd_ty f.Instr.f_ty) then
        errf "pc %d: field %s has type %s, reference says %s" pc
          (Instr.field_ref_to_string f)
          (Types.to_string fd.Cls.fd_ty)
          (Types.to_string f.Instr.f_ty);
      if fd.Cls.fd_access.Access.is_static <> want_static then
        errf "pc %d: field %s static-ness mismatch" pc
          (Instr.field_ref_to_string f);
      check_access ctx ~member_vis:fd.Cls.fd_access.Access.visibility
        ~declaring:decl.Cls.c_name;
      (decl, fd)

let check_final_store ctx pc (decl : Cls.t) (fd : Cls.field) =
  if fd.Cls.fd_access.Access.is_final && ctx.mode = Strict then
    (* final instance fields may only be written in a constructor of the
       declaring class; final statics only in its <clinit>. *)
    let inside_init =
      String.equal ctx.cls.Cls.c_name decl.Cls.c_name
      &&
      if fd.Cls.fd_access.Access.is_static then
        String.equal ctx.meth.Cls.md_name Cls.clinit_name
      else String.equal ctx.meth.Cls.md_name Cls.ctor_name
    in
    if not inside_init then
      errf "pc %d: assignment to final field %s.%s" pc decl.Cls.c_name
        fd.Cls.fd_name

let resolve_method ctx pc (m : Instr.method_ref) ~want_static =
  match Cls.resolve_method ctx.prog m.Instr.m_class m.Instr.m_name m.Instr.m_sig
  with
  | None ->
      errf "pc %d: unresolved method %s" pc (Instr.method_ref_to_string m)
  | Some (decl, md) ->
      if md.Cls.md_access.Access.is_static <> want_static then
        errf "pc %d: method %s static-ness mismatch" pc
          (Instr.method_ref_to_string m);
      check_access ctx ~member_vis:md.Cls.md_access.Access.visibility
        ~declaring:decl.Cls.c_name;
      (decl, md)

(* Pop arguments right-to-left, checking each against the declared type. *)
let pop_args ctx st pc (msig : Types.msig) what =
  List.fold_left
    (fun st ty -> pop_expect ctx st pc (vty_of_ty ty) what)
    st
    (List.rev msig.Types.params)

let transfer ctx pc (ins : Instr.t) (st : state) :
    [ `Next of state | `Jump of (int * state) list | `Stop ] =
  let prog = ctx.prog in
  match ins with
  | Const_int _ -> `Next (push V_int st)
  | Const_bool _ -> `Next (push V_bool st)
  | Const_str _ -> `Next (push (V_ref (R_class Types.string_class)) st)
  | Const_null -> `Next (push (V_ref R_null) st)
  | Load i ->
      if i < 0 || i >= Array.length st.locals then
        errf "pc %d: local %d out of range" pc i;
      let v = st.locals.(i) in
      if v = V_uninit then errf "pc %d: load of uninitialized local %d" pc i;
      `Next (push v st)
  | Store i ->
      if i < 0 || i >= Array.length st.locals then
        errf "pc %d: local %d out of range" pc i;
      let v, st = pop st pc in
      if v = V_uninit then errf "pc %d: store of uninitialized value" pc;
      let locals = Array.copy st.locals in
      locals.(i) <- v;
      `Next { st with locals }
  | Dup ->
      let v, _ = pop st pc in
      `Next (push v st)
  | Pop ->
      let _, st = pop st pc in
      `Next st
  | Swap ->
      let a, st' = pop st pc in
      let b, st'' = pop st' pc in
      `Next (push b (push a st''))
  | Binop _ ->
      let st = pop_expect ctx st pc V_int "binop" in
      let st = pop_expect ctx st pc V_int "binop" in
      `Next (push V_int st)
  | Neg ->
      let st = pop_expect ctx st pc V_int "neg" in
      `Next (push V_int st)
  | Icmp _ ->
      let st = pop_expect ctx st pc V_int "icmp" in
      let st = pop_expect ctx st pc V_int "icmp" in
      `Next (push V_bool st)
  | Bnot ->
      let st = pop_expect ctx st pc V_bool "bnot" in
      `Next (push V_bool st)
  | Acmp_eq | Acmp_ne ->
      let _, st = pop_ref st pc "acmp" in
      let _, st = pop_ref st pc "acmp" in
      `Next (push V_bool st)
  | If_true target | If_false target ->
      let st = pop_expect ctx st pc V_bool "conditional branch" in
      `Jump [ (target, st); (pc + 1, st) ]
  | Goto target -> `Jump [ (target, st) ]
  | Get_field f ->
      let _decl, fd = resolve_field ctx pc f ~want_static:false in
      let st =
        pop_expect ctx st pc (V_ref (R_class f.Instr.f_class)) "getfield"
      in
      `Next (push (vty_of_ty fd.Cls.fd_ty) st)
  | Put_field f ->
      let decl, fd = resolve_field ctx pc f ~want_static:false in
      check_final_store ctx pc decl fd;
      let st = pop_expect ctx st pc (vty_of_ty fd.Cls.fd_ty) "putfield" in
      let st =
        pop_expect ctx st pc (V_ref (R_class f.Instr.f_class)) "putfield"
      in
      `Next st
  | Get_static f ->
      let _decl, fd = resolve_field ctx pc f ~want_static:true in
      `Next (push (vty_of_ty fd.Cls.fd_ty) st)
  | Put_static f ->
      let decl, fd = resolve_field ctx pc f ~want_static:true in
      check_final_store ctx pc decl fd;
      let st = pop_expect ctx st pc (vty_of_ty fd.Cls.fd_ty) "putstatic" in
      `Next st
  | Invoke_virtual m ->
      let _decl, md = resolve_method ctx pc m ~want_static:false in
      let st = pop_args ctx st pc m.Instr.m_sig "invokevirtual arg" in
      let st =
        pop_expect ctx st pc
          (V_ref (R_class m.Instr.m_class))
          "invokevirtual receiver"
      in
      `Next
        (match md.Cls.md_sig.Types.ret with
        | Types.TVoid -> st
        | t -> push (vty_of_ty t) st)
  | Invoke_direct m ->
      let _decl, md = resolve_method ctx pc m ~want_static:false in
      let st = pop_args ctx st pc m.Instr.m_sig "invokedirect arg" in
      let st =
        pop_expect ctx st pc
          (V_ref (R_class m.Instr.m_class))
          "invokedirect receiver"
      in
      `Next
        (match md.Cls.md_sig.Types.ret with
        | Types.TVoid -> st
        | t -> push (vty_of_ty t) st)
  | Invoke_static m ->
      let _decl, md = resolve_method ctx pc m ~want_static:true in
      let st = pop_args ctx st pc m.Instr.m_sig "invokestatic arg" in
      `Next
        (match md.Cls.md_sig.Types.ret with
        | Types.TVoid -> st
        | t -> push (vty_of_ty t) st)
  | New_obj c ->
      if Cls.find_class prog c = None then errf "pc %d: new of unknown class %s" pc c;
      `Next (push (V_ref (R_class c)) st)
  | New_array t ->
      let st = pop_expect ctx st pc V_int "newarray length" in
      `Next (push (V_ref (R_array t)) st)
  | Array_load t ->
      let st = pop_expect ctx st pc V_int "array index" in
      let st = pop_expect ctx st pc (V_ref (R_array t)) "array load" in
      `Next (push (vty_of_ty t) st)
  | Array_store t ->
      let st = pop_expect ctx st pc (vty_of_ty t) "array store value" in
      let st = pop_expect ctx st pc V_int "array index" in
      let st = pop_expect ctx st pc (V_ref (R_array t)) "array store" in
      `Next st
  | Array_len ->
      let r, st = pop_ref st pc "arraylength" in
      (match r with
      | R_array _ | R_null -> ()
      | R_class c -> errf "pc %d: arraylength on non-array %s" pc c);
      `Next (push V_int st)
  | Check_cast t ->
      if not (Types.is_reference t) then
        errf "pc %d: checkcast to non-reference type" pc;
      (match t with
      | Types.TRef c when Cls.find_class prog c = None ->
          errf "pc %d: checkcast to unknown class %s" pc c
      | _ -> ());
      let _, st = pop_ref st pc "checkcast" in
      `Next (push (vty_of_ty t) st)
  | Instance_of t ->
      if not (Types.is_reference t) then
        errf "pc %d: instanceof non-reference type" pc;
      let _, st = pop_ref st pc "instanceof" in
      `Next (push V_bool st)
  | Return ->
      if not (Types.equal_ty ctx.meth.Cls.md_sig.Types.ret Types.TVoid) then
        errf "pc %d: void return from non-void method" pc;
      `Stop
  | Return_val ->
      let ret = ctx.meth.Cls.md_sig.Types.ret in
      if Types.equal_ty ret Types.TVoid then
        errf "pc %d: value return from void method" pc;
      let _ = pop_expect ctx st pc (vty_of_ty ret) "return value" in
      `Stop
  | Yield _ -> `Next st

(* Verify one method body.  Raises [Verify_error]. *)
let verify_method ?(mode = Strict) (prog : Cls.program) (cls : Cls.t)
    (meth : Cls.meth) : unit =
  match meth.Cls.md_code with
  | None -> () (* native *)
  | Some code ->
      let ctx = { prog; mode; cls; meth } in
      let n = Array.length code in
      if n = 0 then errf "method %s.%s: empty code" cls.Cls.c_name
          meth.Cls.md_name;
      (* entry state: [this] (unless static) then parameters *)
      let locals = Array.make meth.Cls.md_max_locals V_uninit in
      let slot = ref 0 in
      if not meth.Cls.md_access.Access.is_static then begin
        if meth.Cls.md_max_locals < 1 then
          errf "method %s.%s: max_locals too small for [this]" cls.Cls.c_name
            meth.Cls.md_name;
        locals.(0) <- V_ref (R_class cls.Cls.c_name);
        incr slot
      end;
      List.iter
        (fun ty ->
          if !slot >= meth.Cls.md_max_locals then
            errf "method %s.%s: max_locals too small for parameters"
              cls.Cls.c_name meth.Cls.md_name;
          locals.(!slot) <- vty_of_ty ty;
          incr slot)
        meth.Cls.md_sig.Types.params;
      let entry = { stack = []; locals } in
      let states : state option array = Array.make n None in
      states.(0) <- Some entry;
      let work = Queue.create () in
      Queue.add 0 work;
      let record pc st =
        if pc < 0 || pc >= n then errf "branch target %d out of range" pc;
        match states.(pc) with
        | None ->
            states.(pc) <- Some st;
            Queue.add pc work
        | Some old ->
            let merged, changed = merge_states prog pc old st in
            if changed then begin
              states.(pc) <- Some merged;
              Queue.add pc work
            end
      in
      while not (Queue.is_empty work) do
        let pc = Queue.pop work in
        match states.(pc) with
        | None -> assert false
        | Some st -> (
            match transfer ctx pc code.(pc) st with
            | `Next st' ->
                if pc + 1 >= n then
                  errf "pc %d: control falls off the end of %s.%s" pc
                    cls.Cls.c_name meth.Cls.md_name;
                record (pc + 1) st'
            | `Jump targets -> List.iter (fun (t, s) -> record t s) targets
            | `Stop -> ())
      done

(* Verify a whole class / program; collects error messages. *)
let verify_class ?(mode = Strict) prog cls : string list =
  List.filter_map
    (fun m ->
      try
        verify_method ~mode prog cls m;
        None
      with Verify_error e ->
        Some (Printf.sprintf "%s.%s: %s" cls.Cls.c_name m.Cls.md_name e))
    cls.Cls.c_methods

let verify_program ?(mode = Strict) (prog : Cls.program) : string list =
  let wf = Cls.well_formed prog in
  if wf <> [] then wf
  else
    Cls.program_to_list prog
    |> List.concat_map (fun c -> verify_class ~mode prog c)
