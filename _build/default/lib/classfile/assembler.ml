(* A textual assembler and disassembler for MiniJava bytecode class files.

   Lets tooling (and tests) author class files without the MiniJava
   frontend, and gives a stable dump format whose round trip is the
   identity:

     class Counter extends Object {
       field public int value
       method public tick ()V locals=1 {
           yield_entry
           load 0
           load 0
           getfield Counter.value I
           const_int 1
           add
           putfield Counter.value I
           return
       }
     }

   Branches use labels ("top:" ... "goto top"); the disassembler emits
   "Ln:" labels at every branch target. *)

exception Asm_error of string * int (* message, 1-based line *)

let err line fmt = Printf.ksprintf (fun m -> raise (Asm_error (m, line))) fmt

(* --- disassembly ---------------------------------------------------------- *)

let vis_kw = function
  | Access.Public -> "public"
  | Access.Protected -> "protected"
  | Access.Private -> "private"
  | Access.Package -> "package"

let mods_str (a : Access.t) =
  String.concat " "
    (List.filter
       (fun s -> s <> "")
       [
         vis_kw a.Access.visibility;
         (if a.Access.is_static then "static" else "");
         (if a.Access.is_final then "final" else "");
         (if a.Access.is_native then "native" else "");
       ])

let instr_str ~label = function
  | Instr.Const_int i -> Printf.sprintf "const_int %d" i
  | Instr.Const_bool b -> Printf.sprintf "const_bool %b" b
  | Instr.Const_str s -> Printf.sprintf "const_str %S" s
  | Instr.Const_null -> "const_null"
  | Instr.Load i -> Printf.sprintf "load %d" i
  | Instr.Store i -> Printf.sprintf "store %d" i
  | Instr.Dup -> "dup"
  | Instr.Pop -> "pop"
  | Instr.Swap -> "swap"
  | Instr.Binop b -> Instr.binop_to_string b
  | Instr.Neg -> "neg"
  | Instr.Icmp c -> "icmp_" ^ Instr.icmp_to_string c
  | Instr.Bnot -> "bnot"
  | Instr.Acmp_eq -> "acmp_eq"
  | Instr.Acmp_ne -> "acmp_ne"
  | Instr.If_true t -> Printf.sprintf "if_true %s" (label t)
  | Instr.If_false t -> Printf.sprintf "if_false %s" (label t)
  | Instr.Goto t -> Printf.sprintf "goto %s" (label t)
  | Instr.Get_field f ->
      Printf.sprintf "getfield %s.%s %s" f.Instr.f_class f.Instr.f_name
        (Types.descriptor f.Instr.f_ty)
  | Instr.Put_field f ->
      Printf.sprintf "putfield %s.%s %s" f.Instr.f_class f.Instr.f_name
        (Types.descriptor f.Instr.f_ty)
  | Instr.Get_static f ->
      Printf.sprintf "getstatic %s.%s %s" f.Instr.f_class f.Instr.f_name
        (Types.descriptor f.Instr.f_ty)
  | Instr.Put_static f ->
      Printf.sprintf "putstatic %s.%s %s" f.Instr.f_class f.Instr.f_name
        (Types.descriptor f.Instr.f_ty)
  | Instr.Invoke_virtual m ->
      Printf.sprintf "invokevirtual %s.%s %s" m.Instr.m_class m.Instr.m_name
        (Types.msig_descriptor m.Instr.m_sig)
  | Instr.Invoke_static m ->
      Printf.sprintf "invokestatic %s.%s %s" m.Instr.m_class m.Instr.m_name
        (Types.msig_descriptor m.Instr.m_sig)
  | Instr.Invoke_direct m ->
      Printf.sprintf "invokedirect %s.%s %s" m.Instr.m_class m.Instr.m_name
        (Types.msig_descriptor m.Instr.m_sig)
  | Instr.New_obj c -> "new " ^ c
  | Instr.New_array t -> "newarray " ^ Types.descriptor t
  | Instr.Array_load t -> "aload " ^ Types.descriptor t
  | Instr.Array_store t -> "astore " ^ Types.descriptor t
  | Instr.Array_len -> "arraylength"
  | Instr.Check_cast t -> "checkcast " ^ Types.descriptor t
  | Instr.Instance_of t -> "instanceof " ^ Types.descriptor t
  | Instr.Return -> "return"
  | Instr.Return_val -> "return_val"
  | Instr.Yield Instr.Y_entry -> "yield_entry"
  | Instr.Yield Instr.Y_backedge -> "yield_backedge"

let print_method buf (m : Cls.meth) =
  let mods = mods_str m.Cls.md_access in
  Printf.bprintf buf "  method %s%s%s %s locals=%d"
    mods
    (if mods = "" then "" else " ")
    m.Cls.md_name
    (Types.msig_descriptor m.Cls.md_sig)
    m.Cls.md_max_locals;
  match m.Cls.md_code with
  | None -> Buffer.add_string buf "\n"
  | Some code ->
      Buffer.add_string buf " {\n";
      (* label every branch target *)
      let targets = Hashtbl.create 8 in
      Array.iter
        (fun i ->
          match i with
          | Instr.If_true t | Instr.If_false t | Instr.Goto t ->
              if not (Hashtbl.mem targets t) then
                Hashtbl.replace targets t
                  (Printf.sprintf "L%d" (Hashtbl.length targets))
          | _ -> ())
        code;
      let label t = Hashtbl.find targets t in
      Array.iteri
        (fun pc i ->
          (match Hashtbl.find_opt targets pc with
          | Some l -> Printf.bprintf buf "    %s:\n" l
          | None -> ());
          Printf.bprintf buf "      %s\n" (instr_str ~label i))
        code;
      Buffer.add_string buf "  }\n"

let print_class buf (c : Cls.t) =
  Printf.bprintf buf "class %s extends %s {\n" c.Cls.c_name c.Cls.c_super;
  List.iter
    (fun (f : Cls.field) ->
      let mods = mods_str f.Cls.fd_access in
      Printf.bprintf buf "  field %s%s%s %s\n" mods
        (if mods = "" then "" else " ")
        f.Cls.fd_name
        (Types.descriptor f.Cls.fd_ty))
    c.Cls.c_fields;
  List.iter (print_method buf) c.Cls.c_methods;
  Buffer.add_string buf "}\n"

let print_program (classes : Cls.t list) : string =
  let buf = Buffer.create 1024 in
  List.iter (print_class buf) classes;
  Buffer.contents buf

(* --- assembly --------------------------------------------------------------- *)

(* split a line into tokens; string literals (%S) form one token *)
let tokenize_line line lno : string list =
  let n = String.length line in
  let out = ref [] in
  let i = ref 0 in
  while !i < n do
    let c = line.[!i] in
    if c = ' ' || c = '\t' then incr i
    else if c = '"' then begin
      (* scan an escaped string literal *)
      let j = ref (!i + 1) in
      let fin = ref false in
      while (not !fin) && !j < n do
        if line.[!j] = '\\' then j := !j + 2
        else if line.[!j] = '"' then fin := true
        else incr j
      done;
      if not !fin then err lno "unterminated string literal";
      out := String.sub line !i (!j - !i + 1) :: !out;
      i := !j + 1
    end
    else begin
      let j = ref !i in
      while !j < n && line.[!j] <> ' ' && line.[!j] <> '\t' do
        incr j
      done;
      out := String.sub line !i (!j - !i) :: !out;
      i := !j
    end
  done;
  List.rev !out

let parse_mods lno (toks : string list) : Access.t * string list =
  let rec go acc = function
    | "public" :: r -> go { acc with Access.visibility = Access.Public } r
    | "private" :: r -> go { acc with Access.visibility = Access.Private } r
    | "protected" :: r ->
        go { acc with Access.visibility = Access.Protected } r
    | "package" :: r -> go { acc with Access.visibility = Access.Package } r
    | "static" :: r -> go { acc with Access.is_static = true } r
    | "final" :: r -> go { acc with Access.is_final = true } r
    | "native" :: r -> go { acc with Access.is_native = true } r
    | r -> (acc, r)
  in
  ignore lno;
  go Access.default toks

let parse_member_ref lno (s : string) : string * string =
  match String.rindex_opt s '.' with
  | Some i -> (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
  | None -> err lno "expected Class.member, got %s" s

let parse_ty lno s =
  try Types.of_descriptor s
  with Types.Bad_descriptor _ -> err lno "bad type descriptor %s" s

let parse_msig lno s =
  try Types.msig_of_descriptor s
  with Types.Bad_descriptor _ -> err lno "bad method descriptor %s" s

let fref lno cls_name ty_desc =
  let c, f = parse_member_ref lno cls_name in
  { Instr.f_class = c; f_name = f; f_ty = parse_ty lno ty_desc }

let mref lno cls_name sig_desc =
  let c, m = parse_member_ref lno cls_name in
  { Instr.m_class = c; m_name = m; m_sig = parse_msig lno sig_desc }

let parse_instr lno (toks : string list) :
    [ `Ins of Instr.t | `Branch of (int -> Instr.t) * string ] =
  match toks with
  | [ "const_int"; v ] -> `Ins (Instr.Const_int (int_of_string v))
  | [ "const_bool"; v ] -> `Ins (Instr.Const_bool (bool_of_string v))
  | [ "const_str"; s ] -> `Ins (Instr.Const_str (Scanf.sscanf s "%S" Fun.id))
  | [ "const_null" ] -> `Ins Instr.Const_null
  | [ "load"; i ] -> `Ins (Instr.Load (int_of_string i))
  | [ "store"; i ] -> `Ins (Instr.Store (int_of_string i))
  | [ "dup" ] -> `Ins Instr.Dup
  | [ "pop" ] -> `Ins Instr.Pop
  | [ "swap" ] -> `Ins Instr.Swap
  | [ "add" ] -> `Ins (Instr.Binop Instr.Add)
  | [ "sub" ] -> `Ins (Instr.Binop Instr.Sub)
  | [ "mul" ] -> `Ins (Instr.Binop Instr.Mul)
  | [ "div" ] -> `Ins (Instr.Binop Instr.Div)
  | [ "rem" ] -> `Ins (Instr.Binop Instr.Rem)
  | [ "neg" ] -> `Ins Instr.Neg
  | [ "icmp_eq" ] -> `Ins (Instr.Icmp Instr.Eq)
  | [ "icmp_ne" ] -> `Ins (Instr.Icmp Instr.Ne)
  | [ "icmp_lt" ] -> `Ins (Instr.Icmp Instr.Lt)
  | [ "icmp_le" ] -> `Ins (Instr.Icmp Instr.Le)
  | [ "icmp_gt" ] -> `Ins (Instr.Icmp Instr.Gt)
  | [ "icmp_ge" ] -> `Ins (Instr.Icmp Instr.Ge)
  | [ "bnot" ] -> `Ins Instr.Bnot
  | [ "acmp_eq" ] -> `Ins Instr.Acmp_eq
  | [ "acmp_ne" ] -> `Ins Instr.Acmp_ne
  | [ "if_true"; l ] -> `Branch ((fun t -> Instr.If_true t), l)
  | [ "if_false"; l ] -> `Branch ((fun t -> Instr.If_false t), l)
  | [ "goto"; l ] -> `Branch ((fun t -> Instr.Goto t), l)
  | [ "getfield"; r; d ] -> `Ins (Instr.Get_field (fref lno r d))
  | [ "putfield"; r; d ] -> `Ins (Instr.Put_field (fref lno r d))
  | [ "getstatic"; r; d ] -> `Ins (Instr.Get_static (fref lno r d))
  | [ "putstatic"; r; d ] -> `Ins (Instr.Put_static (fref lno r d))
  | [ "invokevirtual"; r; d ] -> `Ins (Instr.Invoke_virtual (mref lno r d))
  | [ "invokestatic"; r; d ] -> `Ins (Instr.Invoke_static (mref lno r d))
  | [ "invokedirect"; r; d ] -> `Ins (Instr.Invoke_direct (mref lno r d))
  | [ "new"; c ] -> `Ins (Instr.New_obj c)
  | [ "newarray"; d ] -> `Ins (Instr.New_array (parse_ty lno d))
  | [ "aload"; d ] -> `Ins (Instr.Array_load (parse_ty lno d))
  | [ "astore"; d ] -> `Ins (Instr.Array_store (parse_ty lno d))
  | [ "arraylength" ] -> `Ins Instr.Array_len
  | [ "checkcast"; d ] -> `Ins (Instr.Check_cast (parse_ty lno d))
  | [ "instanceof"; d ] -> `Ins (Instr.Instance_of (parse_ty lno d))
  | [ "return" ] -> `Ins Instr.Return
  | [ "return_val" ] -> `Ins Instr.Return_val
  | [ "yield_entry" ] -> `Ins (Instr.Yield Instr.Y_entry)
  | [ "yield_backedge" ] -> `Ins (Instr.Yield Instr.Y_backedge)
  | t :: _ -> err lno "unknown instruction %s" t
  | [] -> err lno "empty instruction"

type pstate = {
  lines : (int * string list) array; (* (line number, tokens) *)
  mutable k : int;
}

let peek st = if st.k < Array.length st.lines then Some st.lines.(st.k) else None

let next st =
  match peek st with
  | Some l ->
      st.k <- st.k + 1;
      l
  | None -> err 0 "unexpected end of input"

let parse_code st : Instr.t array * int =
  (* returns code and the max local referenced (for a locals sanity
     check); the caller got locals= from the header *)
  let labels = Hashtbl.create 8 in
  let out = ref [] in
  let patches = ref [] in
  let n = ref 0 in
  let fin = ref false in
  while not !fin do
    (let lno, toks = next st in
     match toks with
     | [ "}" ] -> fin := true
     | [ lbl ]
       when String.length lbl > 1 && lbl.[String.length lbl - 1] = ':' ->
         Hashtbl.replace labels (String.sub lbl 0 (String.length lbl - 1)) !n
     | _ -> (
         match parse_instr lno toks with
         | `Ins i ->
             out := i :: !out;
             incr n
         | `Branch (mk, l) ->
             patches := (!n, lno, mk, l) :: !patches;
             out := Instr.Return :: !out (* placeholder *);
             incr n))
  done;
  let code = Array.of_list (List.rev !out) in
  List.iter
    (fun (idx, lno, mk, l) ->
      match Hashtbl.find_opt labels l with
      | Some t -> code.(idx) <- mk t
      | None -> err lno "unknown label %s" l)
    !patches;
  (code, !n)

let parse_locals lno s =
  match String.split_on_char '=' s with
  | [ "locals"; v ] -> int_of_string v
  | _ -> err lno "expected locals=N, got %s" s

let parse_class st : Cls.t =
  let lno, toks = next st in
  match toks with
  | [ "class"; name; "extends"; super; "{" ] ->
      let fields = ref [] and methods = ref [] in
      let fin = ref false in
      while not !fin do
        (let lno, toks = next st in
        match toks with
        | [ "}" ] -> fin := true
        | "field" :: rest -> (
            let access, rest = parse_mods lno rest in
            match rest with
            | [ fname; desc ] ->
                fields :=
                  {
                    Cls.fd_name = fname;
                    fd_ty = parse_ty lno desc;
                    fd_access = access;
                  }
                  :: !fields
            | _ -> err lno "expected: field [mods] name descriptor")
        | "method" :: rest -> (
            let access, rest = parse_mods lno rest in
            match rest with
            | [ mname; desc; locals ] ->
                (* native method: no body *)
                methods :=
                  {
                    Cls.md_name = mname;
                    md_sig = parse_msig lno desc;
                    md_access = access;
                    md_max_locals = parse_locals lno locals;
                    md_code = None;
                  }
                  :: !methods
            | [ mname; desc; locals; "{" ] ->
                let code, _ = parse_code st in
                methods :=
                  {
                    Cls.md_name = mname;
                    md_sig = parse_msig lno desc;
                    md_access = access;
                    md_max_locals = parse_locals lno locals;
                    md_code = Some code;
                  }
                  :: !methods
            | _ -> err lno "expected: method [mods] name descriptor locals=N {")
        | t :: _ -> err lno "unexpected %s in class body" t
        | [] -> ())
      done;
      {
        Cls.c_name = name;
        c_super = super;
        c_fields = List.rev !fields;
        c_methods = List.rev !methods;
      }
  | _ -> err lno "expected: class Name extends Super {"

let parse_program (src : string) : Cls.t list =
  let lines =
    String.split_on_char '\n' src
    |> List.mapi (fun i l ->
           (* '#' starts a comment line (';' is taken by descriptors) *)
           let l = if String.trim l <> "" && (String.trim l).[0] = '#' then "" else l in
           (i + 1, tokenize_line l (i + 1)))
    |> List.filter (fun (_, toks) -> toks <> [])
  in
  let st = { lines = Array.of_list lines; k = 0 } in
  let out = ref [] in
  while peek st <> None do
    out := parse_class st :: !out
  done;
  List.rev !out
