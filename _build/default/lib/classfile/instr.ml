(* The MiniJava bytecode instruction set.

   This is a stack-based ISA in the style of JVM bytecode.  Field and method
   references are *symbolic* (class name + member name + type): resolving
   them to hard-coded offsets, JTOC slots and TIB indices is the job of the
   JIT ([Jv_vm.Jit]), exactly as in Jikes RVM.  That split is load-bearing
   for the paper's category-(2) "indirect method updates": compiled code
   embeds offsets, bytecode does not. *)

type field_ref = { f_class : string; f_name : string; f_ty : Types.ty }

type method_ref = { m_class : string; m_name : string; m_sig : Types.msig }

type binop = Add | Sub | Mul | Div | Rem

type icmp = Eq | Ne | Lt | Le | Gt | Ge

(* Yield-point kinds.  The compiler inserts yield points on method entry and
   loop back edges; method exit is an implicit yield point at [Return].
   Yield points are the VM safe points at which threads stop for GC,
   scheduling, and dynamic updates. *)
type yield_kind = Y_entry | Y_backedge

type t =
  | Const_int of int
  | Const_bool of bool
  | Const_str of string
  | Const_null
  | Load of int (* local slot -> stack *)
  | Store of int (* stack -> local slot *)
  | Dup
  | Pop
  | Swap
  | Binop of binop (* int, int -> int *)
  | Neg (* int -> int *)
  | Icmp of icmp (* int, int -> bool *)
  | Bnot (* bool -> bool *)
  | Acmp_eq (* ref, ref -> bool *)
  | Acmp_ne
  | If_true of int (* bool -> .; branch to absolute index *)
  | If_false of int
  | Goto of int
  | Get_field of field_ref (* ref -> value *)
  | Put_field of field_ref (* ref, value -> . *)
  | Get_static of field_ref
  | Put_static of field_ref
  | Invoke_virtual of method_ref (* this, args... -> [ret] *)
  | Invoke_static of method_ref
  | Invoke_direct of method_ref (* constructors and private methods *)
  | New_obj of string
  | New_array of Types.ty (* length -> ref *)
  | Array_load of Types.ty (* ref, idx -> value *)
  | Array_store of Types.ty (* ref, idx, value -> . *)
  | Array_len (* ref -> int *)
  | Check_cast of Types.ty (* ref -> ref, traps on failure *)
  | Instance_of of Types.ty (* ref -> bool *)
  | Return
  | Return_val
  | Yield of yield_kind

let field_ref_to_string { f_class; f_name; f_ty } =
  Printf.sprintf "%s.%s:%s" f_class f_name (Types.descriptor f_ty)

let method_ref_to_string { m_class; m_name; m_sig } =
  Printf.sprintf "%s.%s%s" m_class m_name (Types.msig_descriptor m_sig)

let binop_to_string = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Rem -> "rem"

let icmp_to_string = function
  | Eq -> "eq"
  | Ne -> "ne"
  | Lt -> "lt"
  | Le -> "le"
  | Gt -> "gt"
  | Ge -> "ge"

let to_string = function
  | Const_int i -> Printf.sprintf "const_int %d" i
  | Const_bool b -> Printf.sprintf "const_bool %b" b
  | Const_str s -> Printf.sprintf "const_str %S" s
  | Const_null -> "const_null"
  | Load i -> Printf.sprintf "load %d" i
  | Store i -> Printf.sprintf "store %d" i
  | Dup -> "dup"
  | Pop -> "pop"
  | Swap -> "swap"
  | Binop b -> binop_to_string b
  | Neg -> "neg"
  | Icmp c -> Printf.sprintf "icmp_%s" (icmp_to_string c)
  | Bnot -> "bnot"
  | Acmp_eq -> "acmp_eq"
  | Acmp_ne -> "acmp_ne"
  | If_true l -> Printf.sprintf "if_true -> %d" l
  | If_false l -> Printf.sprintf "if_false -> %d" l
  | Goto l -> Printf.sprintf "goto -> %d" l
  | Get_field f -> "getfield " ^ field_ref_to_string f
  | Put_field f -> "putfield " ^ field_ref_to_string f
  | Get_static f -> "getstatic " ^ field_ref_to_string f
  | Put_static f -> "putstatic " ^ field_ref_to_string f
  | Invoke_virtual m -> "invokevirtual " ^ method_ref_to_string m
  | Invoke_static m -> "invokestatic " ^ method_ref_to_string m
  | Invoke_direct m -> "invokedirect " ^ method_ref_to_string m
  | New_obj c -> "new " ^ c
  | New_array t -> "newarray " ^ Types.descriptor t
  | Array_load t -> "aload " ^ Types.descriptor t
  | Array_store t -> "astore " ^ Types.descriptor t
  | Array_len -> "arraylength"
  | Check_cast t -> "checkcast " ^ Types.to_string t
  | Instance_of t -> "instanceof " ^ Types.to_string t
  | Return -> "return"
  | Return_val -> "return_val"
  | Yield Y_entry -> "yield_entry"
  | Yield Y_backedge -> "yield_backedge"

let pp ppf i = Fmt.string ppf (to_string i)

let equal (a : t) (b : t) = a = b

(* Structural equality of two code arrays: the UPT's notion of "the bytecode
   did not change". *)
let equal_code (a : t array) (b : t array) =
  Array.length a = Array.length b
  &&
  let n = Array.length a in
  let rec go i = i >= n || (equal a.(i) b.(i) && go (i + 1)) in
  go 0

(* All class names a single instruction refers to.  Used by the UPT to find
   category-(2) indirect method updates: methods whose bytecode mentions an
   updated class have stale compiled code (hard-coded offsets / TIB slots)
   even when the bytecode itself is unchanged. *)
let referenced_classes = function
  | Get_field f | Put_field f | Get_static f | Put_static f ->
      f.f_class :: Types.classes_of_ty [] f.f_ty
  | Invoke_virtual m | Invoke_static m | Invoke_direct m ->
      m.m_class :: Types.classes_of_msig m.m_sig
  | New_obj c -> [ c ]
  | New_array t | Array_load t | Array_store t | Check_cast t | Instance_of t
    ->
      Types.classes_of_ty [] t
  | _ -> []

let code_referenced_classes code =
  let tbl = Hashtbl.create 16 in
  Array.iter
    (fun i ->
      List.iter (fun c -> Hashtbl.replace tbl c ()) (referenced_classes i))
    code;
  Hashtbl.fold (fun c () acc -> c :: acc) tbl []
