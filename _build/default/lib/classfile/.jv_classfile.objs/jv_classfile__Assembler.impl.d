lib/classfile/assembler.ml: Access Array Buffer Cls Fun Hashtbl Instr List Printf Scanf String Types
