lib/classfile/verifier.ml: Access Array Cls Instr List Printf Queue String Types
