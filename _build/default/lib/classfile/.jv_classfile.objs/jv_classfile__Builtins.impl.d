lib/classfile/builtins.ml: Access Cls List Types
