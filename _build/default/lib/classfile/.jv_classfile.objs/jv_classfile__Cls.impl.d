lib/classfile/cls.ml: Access Array Fmt Hashtbl Instr List Printf String Types
