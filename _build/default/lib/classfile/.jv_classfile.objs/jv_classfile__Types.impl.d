lib/classfile/types.ml: Fmt List Printf String
