lib/classfile/instr.ml: Array Fmt Hashtbl List Printf Types
