lib/classfile/access.ml: Fmt List String
