(* Built-in classes: Object, String, and the native-method facades the VM
   provides to MiniJava programs (Sys, Net, Thread, Jvolve).

   These class files are injected by the class loader at boot and are known
   to the MiniJava typechecker.  All their methods are [native]: the VM
   dispatches them to OCaml implementations in [Jv_vm.Natives]. *)

open Types

let native_meth ?(static = false) name params ret : Cls.meth =
  {
    Cls.md_name = name;
    md_sig = { params; ret };
    md_access = Access.make ~static ~native:true ();
    md_max_locals = 0;
    md_code = None;
  }

let object_cls : Cls.t =
  {
    Cls.c_name = object_class;
    c_super = object_class;
    c_fields = [];
    c_methods = [];
  }

let string_cls : Cls.t =
  {
    Cls.c_name = string_class;
    c_super = object_class;
    c_fields =
      [
        (* the interned string-table index; hidden from MiniJava source *)
        {
          Cls.fd_name = "sid#";
          fd_ty = TInt;
          fd_access = Access.make ~visibility:Access.Private ~final:true ();
        };
      ];
    c_methods =
      [
        native_meth "length" [] TInt;
        native_meth "concat" [ t_string ] t_string;
        native_meth "equals" [ t_string ] TBool;
        native_meth "substring" [ TInt; TInt ] t_string;
        native_meth "indexOf" [ t_string ] TInt;
        native_meth "charAt" [ TInt ] TInt;
        native_meth "split" [ t_string; TInt ] (TArray t_string);
        native_meth "startsWith" [ t_string ] TBool;
        native_meth "endsWith" [ t_string ] TBool;
        native_meth "trim" [] t_string;
        native_meth "contains" [ t_string ] TBool;
        native_meth "toInt" [] TInt;
        native_meth "toLowerCase" [] t_string;
        native_meth ~static:true "ofInt" [ TInt ] t_string;
      ];
  }

let sys_cls : Cls.t =
  {
    Cls.c_name = "Sys";
    c_super = object_class;
    c_fields = [];
    c_methods =
      [
        native_meth ~static:true "print" [ t_string ] TVoid;
        native_meth ~static:true "println" [ t_string ] TVoid;
        native_meth ~static:true "time" [] TInt;
        native_meth ~static:true "fail" [ t_string ] TVoid;
        native_meth ~static:true "random" [ TInt ] TInt;
      ];
  }

let net_cls : Cls.t =
  {
    Cls.c_name = "Net";
    c_super = object_class;
    c_fields = [];
    c_methods =
      [
        native_meth ~static:true "listen" [ TInt ] TInt;
        native_meth ~static:true "accept" [ TInt ] TInt;
        native_meth ~static:true "recvLine" [ TInt ] t_string;
        native_meth ~static:true "send" [ TInt; t_string ] TVoid;
        native_meth ~static:true "close" [ TInt ] TVoid;
        (* open a client connection to another service in the same VM;
           returns a negative handle whose send/recvLine/close act on the
           client side of the connection, or 0 if nothing listens *)
        native_meth ~static:true "connectLoopback" [ TInt ] TInt;
      ];
  }

let thread_cls : Cls.t =
  {
    Cls.c_name = "Thread";
    c_super = object_class;
    c_fields = [];
    c_methods =
      [
        native_meth ~static:true "spawn" [ t_object ] TVoid;
        native_meth ~static:true "yieldNow" [] TVoid;
        native_meth ~static:true "sleep" [ TInt ] TVoid;
      ];
  }

let jvolve_cls : Cls.t =
  {
    Cls.c_name = "Jvolve";
    c_super = object_class;
    c_fields = [];
    c_methods =
      [
        (* force an object's transformer to run (paper §3.4); a no-op
           outside the transformer phase *)
        native_meth ~static:true "transform" [ t_object ] TVoid;
      ];
  }

let all = [ object_cls; string_cls; sys_cls; net_cls; thread_cls; jvolve_cls ]

let names = List.map (fun c -> c.Cls.c_name) all

let is_builtin name = List.mem name names

(* A program combining the builtins with user classes. *)
let program_with classes = Cls.program_of_list (all @ classes)
