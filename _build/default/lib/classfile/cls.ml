(* Class files: the interchange format between the MiniJava compiler
   ([Jv_lang]), the UPT ([Jvolve_core.Diff]) and the VM class loader. *)

type field = { fd_name : string; fd_ty : Types.ty; fd_access : Access.t }

type meth = {
  md_name : string;
  md_sig : Types.msig;
  md_access : Access.t;
  md_max_locals : int;
  md_code : Instr.t array option; (* [None] for native methods *)
}

type t = {
  c_name : string;
  c_super : string; (* every class except Object has a superclass *)
  c_fields : field list; (* declared fields only, in declaration order *)
  c_methods : meth list;
}

let ctor_name = "<init>"
let clinit_name = "<clinit>"

(* A "program" is a set of class files keyed by name. *)
type program = (string, t) Hashtbl.t

let program_of_list classes : program =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun c ->
      if Hashtbl.mem tbl c.c_name then
        invalid_arg ("duplicate class " ^ c.c_name);
      Hashtbl.add tbl c.c_name c)
    classes;
  tbl

let program_to_list (p : program) =
  Hashtbl.fold (fun _ c acc -> c :: acc) p []
  |> List.sort (fun a b -> compare a.c_name b.c_name)

let find_class (p : program) name = Hashtbl.find_opt p name

let method_key m = m.md_name ^ Types.msig_descriptor m.md_sig

let find_method (c : t) name msig =
  List.find_opt
    (fun m -> String.equal m.md_name name && Types.equal_msig m.md_sig msig)
    c.c_methods

let find_field (c : t) name =
  List.find_opt (fun f -> String.equal f.fd_name name) c.c_fields

(* Walk up the superclass chain, most-derived first.  The built-in Object
   class is its own fixpoint (its [c_super] is itself). *)
let rec ancestry (p : program) (c : t) acc =
  let acc = c :: acc in
  if String.equal c.c_name Types.object_class then List.rev acc
  else
    match find_class p c.c_super with
    | None -> List.rev acc (* dangling super: caught by well-formedness *)
    | Some s -> ancestry p s acc

let is_subclass (p : program) ~sub ~super =
  if String.equal sub super then true
  else
    match find_class p sub with
    | None -> false
    | Some c ->
        List.exists (fun a -> String.equal a.c_name super) (ancestry p c [])

(* Lookup a field / method anywhere in the hierarchy, most-derived
   declaration first (declaration site returned with the declaring
   class). *)
let resolve_field (p : program) cname fname =
  match find_class p cname with
  | None -> None
  | Some c ->
      ancestry p c []
      |> List.find_map (fun a ->
             match find_field a fname with
             | Some f -> Some (a, f)
             | None -> None)

let resolve_method (p : program) cname mname msig =
  match find_class p cname with
  | None -> None
  | Some c ->
      ancestry p c []
      |> List.find_map (fun a ->
             match find_method a mname msig with
             | Some m -> Some (a, m)
             | None -> None)

(* Static type equality used by the UPT: two declarations are "the same
   member" if name, type and access modifiers coincide. *)
let equal_field a b =
  String.equal a.fd_name b.fd_name
  && Types.equal_ty a.fd_ty b.fd_ty
  && Access.equal a.fd_access b.fd_access

let equal_meth_header a b =
  String.equal a.md_name b.md_name
  && Types.equal_msig a.md_sig b.md_sig
  && Access.equal a.md_access b.md_access

let equal_meth_code a b =
  match (a.md_code, b.md_code) with
  | None, None -> true
  | Some x, Some y -> Instr.equal_code x y
  | _ -> false

(* Well-formedness of a program: a cheap structural pass run before
   verification.  Returns a list of error strings (empty = ok). *)
let well_formed (p : program) : string list =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  Hashtbl.iter
    (fun _ c ->
      (* superclass exists and hierarchy is acyclic *)
      if not (String.equal c.c_name Types.object_class) then begin
        (match find_class p c.c_super with
        | None -> err "class %s: unknown superclass %s" c.c_name c.c_super
        | Some _ ->
            let rec walk seen name =
              if List.mem name seen then
                err "class %s: cyclic superclass chain" c.c_name
              else if not (String.equal name Types.object_class) then
                match find_class p name with
                | None -> ()
                | Some s -> walk (name :: seen) s.c_super
            in
            walk [ c.c_name ] c.c_super);
        ()
      end;
      (* duplicate members *)
      let seen_f = Hashtbl.create 8 in
      List.iter
        (fun f ->
          if Hashtbl.mem seen_f f.fd_name then
            err "class %s: duplicate field %s" c.c_name f.fd_name;
          Hashtbl.add seen_f f.fd_name ())
        c.c_fields;
      let seen_m = Hashtbl.create 8 in
      List.iter
        (fun m ->
          let key = method_key m in
          if Hashtbl.mem seen_m key then
            err "class %s: duplicate method %s" c.c_name key;
          Hashtbl.add seen_m key ();
          (match m.md_code with
          | None when not m.md_access.Access.is_native ->
              err "class %s: method %s has no code and is not native" c.c_name
                key
          | Some _ when m.md_access.Access.is_native ->
              err "class %s: native method %s has code" c.c_name key
          | _ -> ());
          (* overriding must preserve the signature's return type and not
             reduce visibility; MiniJava requires exact signature match for
             overrides, so only visibility narrowing can go wrong. *)
          if (not m.md_access.Access.is_static) && m.md_name <> ctor_name then
            match find_class p c.c_super with
            | Some _ when not (String.equal c.c_name Types.object_class) -> (
                match resolve_method p c.c_super m.md_name m.md_sig with
                | Some (_, sm) when not sm.md_access.Access.is_static ->
                    let rank = function
                      | Access.Public -> 3
                      | Access.Protected -> 2
                      | Access.Package -> 1
                      | Access.Private -> 0
                    in
                    if
                      rank m.md_access.Access.visibility
                      < rank sm.md_access.Access.visibility
                    then
                      err "class %s: override %s narrows visibility" c.c_name
                        key
                | _ -> ())
            | _ -> ())
        c.c_methods)
    p;
  List.rev !errs

let pp_field ppf f =
  Fmt.pf ppf "%a %a %s" Access.pp f.fd_access Types.pp_ty f.fd_ty f.fd_name

let pp_meth ppf m =
  Fmt.pf ppf "%a %a %s%a (max_locals=%d)@." Access.pp m.md_access Types.pp_ty
    m.md_sig.Types.ret m.md_name
    Fmt.(list ~sep:comma Types.pp_ty)
    m.md_sig.Types.params m.md_max_locals;
  match m.md_code with
  | None -> Fmt.pf ppf "  <native>"
  | Some code ->
      Array.iteri (fun i ins -> Fmt.pf ppf "  %3d: %a@." i Instr.pp ins) code

let pp ppf c =
  Fmt.pf ppf "class %s extends %s {@." c.c_name c.c_super;
  List.iter (fun f -> Fmt.pf ppf "  %a;@." pp_field f) c.c_fields;
  List.iter (fun m -> Fmt.pf ppf "  %a@." pp_meth m) c.c_methods;
  Fmt.pf ppf "}"
