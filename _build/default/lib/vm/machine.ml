(* "Machine code": the resolved instruction set produced by the JIT.

   Where bytecode names fields and methods symbolically, machine code has
   hard-coded word offsets, JTOC slots, TIB slot indices and method uids —
   just as Jikes RVM's compilers burn offsets into generated machine code.
   This is what makes the paper's category-(2) updates real in this VM:
   when a class update changes a layout, compiled code of *other* methods
   that mention the class is stale even though their bytecode is not. *)

module Instr = Jv_classfile.Instr

type minstr =
  | M_const of int (* pre-encoded word (int / bool / null) *)
  | M_str of int (* string-table sid: allocates a String object *)
  | M_load of int
  | M_store of int
  | M_dup
  | M_pop
  | M_swap
  | M_add
  | M_sub
  | M_mul
  | M_div
  | M_rem
  | M_neg
  | M_icmp of Instr.icmp
  | M_bnot
  | M_acmp of bool (* true = eq, false = ne *)
  | M_if_true of int
  | M_if_false of int
  | M_goto of int
  | M_getfield of int (* word offset within object *)
  | M_putfield of int
  | M_getstatic of int (* JTOC slot *)
  | M_putstatic of int
  | M_invokevirtual of int * int (* TIB slot, arg count incl. receiver *)
  | M_invokestatic of int * int (* method uid, arg count *)
  | M_invokedirect of int * int (* method uid, arg count incl. receiver *)
  | M_new of int (* class id; size from class metadata *)
  | M_newarray of int (* array class id; length on stack *)
  | M_aload
  | M_astore
  | M_alen
  | M_checkcast of int (* class id *)
  | M_instanceof of int
  | M_return
  | M_return_val
  | M_yield of Instr.yield_kind

type level = Base | Opt

(* A compiled method body.

   [bc_map.(machine_pc)] is the bytecode pc the instruction derives from;
   the OSR machinery uses it to re-locate a parked frame in freshly
   compiled code.  The base compiler is exactly 1:1 with bytecode, so its
   [bc_map] is the identity; the optimizing compiler splices inlined callee
   bodies in, mapping every inlined instruction back to the call site's
   bytecode pc (which is precisely why opt-compiled frames cannot be
   OSR'd across an update: the interior of an inlined region has no
   bytecode pc of its own). *)
type compiled = {
  code : minstr array;
  bc_map : int array;
  level : level;
  inlined : int list; (* uids of methods whose bodies were inlined here *)
  inline_spans : (int * int) list;
      (* [lo, hi) machine-pc ranges covering inlined call sites (the arg
         stores and the spliced body).  Outside these spans an opt frame's
         locals/stack layout coincides with base code at the same bytecode
         pc — the property the opt-OSR extension relies on *)
  owner_uid : int;
  epoch : int; (* class-resolution epoch the offsets were computed in *)
  max_stack : int;
  frame_locals : int; (* local slots needed (method locals + inlined bodies) *)
}

let pc_in_inlined_span (c : compiled) pc =
  List.exists (fun (lo, hi) -> pc >= lo && pc < hi) c.inline_spans

let level_to_string = function Base -> "base" | Opt -> "opt"

(* Maximum operand-stack depth of a code array, by forward dataflow over
   instruction stack effects.  Verified bytecode translates to machine code
   with consistent depths, so a simple worklist suffices. *)
let stack_effect = function
  | M_const _ | M_str _ | M_load _ -> (0, 1)
  | M_store _ | M_pop | M_if_true _ | M_if_false _ -> (1, 0)
  | M_dup -> (1, 2)
  | M_swap -> (2, 2)
  | M_add | M_sub | M_mul | M_div | M_rem | M_icmp _ | M_acmp _ -> (2, 1)
  | M_neg | M_bnot | M_alen | M_checkcast _ | M_instanceof _ | M_newarray _ ->
      (1, 1)
  | M_goto _ | M_yield _ | M_return -> (0, 0)
  | M_return_val -> (1, 0)
  | M_getfield _ -> (1, 1)
  | M_putfield _ -> (2, 0)
  | M_getstatic _ -> (0, 1)
  | M_putstatic _ -> (1, 0)
  | M_new _ -> (0, 1)
  | M_aload -> (2, 1)
  | M_astore -> (3, 0)
  | M_invokevirtual (_, n) | M_invokedirect (_, n) -> (n, 1)
  (* conservatively assume a result; void calls just never read it *)
  | M_invokestatic (_, n) -> (n, 1)

let successors pc = function
  | M_goto t -> [ t ]
  | M_if_true t | M_if_false t -> [ t; pc + 1 ]
  | M_return | M_return_val -> []
  | _ -> [ pc + 1 ]

let compute_max_stack (code : minstr array) : int =
  let n = Array.length code in
  let depth = Array.make n (-1) in
  let maxd = ref 0 in
  let work = Queue.create () in
  if n > 0 then begin
    depth.(0) <- 0;
    Queue.add 0 work
  end;
  while not (Queue.is_empty work) do
    let pc = Queue.pop work in
    let d = depth.(pc) in
    let pops, pushes = stack_effect code.(pc) in
    let d' = d - pops + pushes in
    if d' > !maxd then maxd := d';
    List.iter
      (fun s ->
        if s >= 0 && s < n && depth.(s) < 0 then begin
          depth.(s) <- d';
          Queue.add s work
        end)
      (successors pc code.(pc))
  done;
  !maxd + 1 (* slack for the invoke-result push convention *)

let to_string = function
  | M_const w -> Printf.sprintf "const %s" (Value.to_string w)
  | M_str sid -> Printf.sprintf "str #%d" sid
  | M_load i -> Printf.sprintf "load %d" i
  | M_store i -> Printf.sprintf "store %d" i
  | M_dup -> "dup"
  | M_pop -> "pop"
  | M_swap -> "swap"
  | M_add -> "add"
  | M_sub -> "sub"
  | M_mul -> "mul"
  | M_div -> "div"
  | M_rem -> "rem"
  | M_neg -> "neg"
  | M_icmp c -> "icmp_" ^ Instr.icmp_to_string c
  | M_bnot -> "bnot"
  | M_acmp true -> "acmp_eq"
  | M_acmp false -> "acmp_ne"
  | M_if_true t -> Printf.sprintf "if_true -> %d" t
  | M_if_false t -> Printf.sprintf "if_false -> %d" t
  | M_goto t -> Printf.sprintf "goto -> %d" t
  | M_getfield o -> Printf.sprintf "getfield +%d" o
  | M_putfield o -> Printf.sprintf "putfield +%d" o
  | M_getstatic s -> Printf.sprintf "getstatic [%d]" s
  | M_putstatic s -> Printf.sprintf "putstatic [%d]" s
  | M_invokevirtual (s, n) -> Printf.sprintf "invokevirtual tib[%d] argc=%d" s n
  | M_invokestatic (u, n) -> Printf.sprintf "invokestatic m%d argc=%d" u n
  | M_invokedirect (u, n) -> Printf.sprintf "invokedirect m%d argc=%d" u n
  | M_new c -> Printf.sprintf "new c%d" c
  | M_newarray c -> Printf.sprintf "newarray c%d" c
  | M_aload -> "aload"
  | M_astore -> "astore"
  | M_alen -> "alen"
  | M_checkcast c -> Printf.sprintf "checkcast c%d" c
  | M_instanceof c -> Printf.sprintf "instanceof c%d" c
  | M_return -> "return"
  | M_return_val -> "return_val"
  | M_yield Instr.Y_entry -> "yield_entry"
  | M_yield Instr.Y_backedge -> "yield_backedge"

let pp ppf i = Fmt.string ppf (to_string i)
