lib/vm/sched.ml: Interp Jv_simnet List State
