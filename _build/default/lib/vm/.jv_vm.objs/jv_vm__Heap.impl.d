lib/vm/heap.ml: Array
