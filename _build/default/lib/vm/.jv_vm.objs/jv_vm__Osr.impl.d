lib/vm/osr.ml: Array Jit Machine Rt State
