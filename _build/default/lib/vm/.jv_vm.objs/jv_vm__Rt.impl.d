lib/vm/rt.ml: Array Hashtbl Heap Jv_classfile List Machine Printf Seq String
