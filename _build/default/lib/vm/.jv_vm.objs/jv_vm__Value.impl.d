lib/vm/value.ml: Fmt Printf
