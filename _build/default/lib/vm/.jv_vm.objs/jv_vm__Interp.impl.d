lib/vm/interp.ml: Array Fun Hashtbl Heap Jit Jv_classfile List Machine Option Printf Rt State Value
