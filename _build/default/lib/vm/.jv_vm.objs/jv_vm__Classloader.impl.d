lib/vm/classloader.ml: Array Hashtbl Interp Jit Jv_classfile List Natives Rt State String
