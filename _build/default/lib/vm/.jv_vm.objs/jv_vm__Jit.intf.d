lib/vm/jit.mli: Machine Rt State
