lib/vm/heap.mli:
