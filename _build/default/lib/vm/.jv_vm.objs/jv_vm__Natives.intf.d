lib/vm/natives.mli: State
