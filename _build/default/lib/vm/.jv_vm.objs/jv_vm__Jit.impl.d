lib/vm/jit.ml: Array Jv_classfile List Machine Option Printf Rt State Value
