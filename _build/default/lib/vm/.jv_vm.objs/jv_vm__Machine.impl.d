lib/vm/machine.ml: Array Fmt Jv_classfile List Printf Queue Value
