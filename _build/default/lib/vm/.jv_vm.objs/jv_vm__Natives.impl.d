lib/vm/natives.ml: Array Buffer Char Hashtbl Heap Interp Jit Jv_simnet List Printf Rt State String Value
