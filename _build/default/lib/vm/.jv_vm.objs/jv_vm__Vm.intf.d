lib/vm/vm.mli: Gc Jv_classfile Jv_simnet State
