lib/vm/classloader.mli: Jv_classfile Rt State
