lib/vm/vm.ml: Classloader Gc Heap Sched State
