lib/vm/gc.ml: Array Buffer Hashtbl Heap List Rt State Unix Value
