lib/vm/state.ml: Array Buffer Hashtbl Heap Jv_classfile Jv_simnet List Machine Printf Rt Value
