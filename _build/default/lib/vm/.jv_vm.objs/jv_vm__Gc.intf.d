lib/vm/gc.mli: Hashtbl State
