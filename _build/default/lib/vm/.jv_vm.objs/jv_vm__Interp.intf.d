lib/vm/interp.mli: Rt State
