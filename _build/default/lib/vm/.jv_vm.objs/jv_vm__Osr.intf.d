lib/vm/osr.mli: State
