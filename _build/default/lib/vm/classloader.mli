(** The class loader: verification + runtime-metadata installation. *)

module CF = Jv_classfile

exception Load_error of string list

val topo_sort : CF.Cls.t list -> CF.Cls.t list
(** Superclasses before subclasses. *)

val install :
  State.t -> ?replace:bool -> CF.Cls.t list -> Rt.rt_class list
(** Install class files into the registry ([replace] permits rebinding a
    name, used when installing updated versions).  No verification —
    callers verify first. *)

val run_clinit : State.t -> Rt.rt_class -> unit

val boot : State.t -> CF.Cls.t list -> unit
(** Inject builtins, verify the whole program, install everything,
    register natives, run static initializers.  Raises {!Load_error}. *)

val spawn_main : State.t -> main_class:string -> State.vthread
(** Spawn the program's main thread ([static void main()]). *)
