(* Runtime class metadata: the analogue of Jikes RVM's [RVMClass],
   [RVMMethod], TIBs and the JTOC.

   Each loaded class gets an [rt_class] meta-object recording its instance
   field layout (hard word offsets), its static fields' JTOC slots, and its
   TIB — an array mapping virtual-dispatch slot indices to method uids.
   The JIT queries this metadata and hard-codes the answers into machine
   code; the collector queries it for object sizes.

   A dynamic update *renames* the old [rt_class] (e.g. [User] becomes
   [v131_User]), strips its methods, and installs a brand-new [rt_class]
   under the original name — so both layouts coexist while object
   transformers run (paper §3.3). *)

module CF = Jv_classfile

type field_info = {
  fi_name : string;
  fi_ty : CF.Types.ty;
  fi_access : CF.Access.t;
  fi_offset : int; (* word offset from object base, header included *)
  fi_decl : string; (* declaring class name at load time *)
}

type static_info = {
  si_name : string;
  si_ty : CF.Types.ty;
  si_access : CF.Access.t;
  si_slot : int; (* JTOC slot *)
}

type rt_class = {
  cid : int;
  mutable name : string; (* mutable: updates rename superseded classes *)
  mutable super : int; (* class id; Object points to itself *)
  mutable instance_fields : field_info array; (* full layout, super first *)
  mutable static_fields : static_info array; (* declared statics only *)
  mutable vslots : (string * int) array; (* mangled key -> TIB slot *)
  mutable tib : int array; (* TIB slot -> method uid *)
  mutable methods : rt_method array; (* declared methods *)
  mutable size_words : int; (* header + instance fields *)
  is_array : bool;
  mutable valid : bool; (* false once superseded by an update *)
  mutable defn : CF.Cls.t option; (* class file this was loaded from *)
}

and rt_method = {
  uid : int;
  mutable owner : int; (* class id *)
  m_name : string;
  m_sig : CF.Types.msig;
  m_access : CF.Access.t;
  mutable bytecode : CF.Instr.t array option; (* None = native *)
  native_key : string option; (* dispatch key into the natives table *)
  mutable max_locals : int;
  mutable base_code : Machine.compiled option;
  mutable opt_code : Machine.compiled option;
  mutable invocations : int;
  mutable m_valid : bool; (* false once invalidated by an update *)
}

let mangle name msig = name ^ CF.Types.msig_descriptor msig

let method_qname (c : rt_class) (m : rt_method) =
  Printf.sprintf "%s.%s%s" c.name m.m_name (CF.Types.msig_descriptor m.m_sig)

(* The registry: id-indexed stores of classes and methods, plus the name
   table that maps the *current* name of each valid class. *)
type registry = {
  mutable classes : rt_class array;
  mutable n_classes : int;
  mutable methods : rt_method array;
  mutable n_methods : int;
  by_name : (string, int) Hashtbl.t;
  mutable epoch : int;
      (* bumped on every update installation; compiled code records the
         epoch it resolved offsets in *)
}

let dummy_method =
  {
    uid = -1;
    owner = -1;
    m_name = "<dummy>";
    m_sig = { CF.Types.params = []; ret = CF.Types.TVoid };
    m_access = CF.Access.default;
    bytecode = None;
    native_key = None;
    max_locals = 0;
    base_code = None;
    opt_code = None;
    invocations = 0;
    m_valid = false;
  }

let dummy_class =
  {
    cid = -1;
    name = "<dummy>";
    super = -1;
    instance_fields = [||];
    static_fields = [||];
    vslots = [||];
    tib = [||];
    methods = [||];
    size_words = Heap.header_words;
    is_array = false;
    valid = false;
    defn = None;
  }

let create_registry () =
  {
    classes = Array.make 64 dummy_class;
    n_classes = 0;
    methods = Array.make 256 dummy_method;
    n_methods = 0;
    by_name = Hashtbl.create 64;
    epoch = 0;
  }

let grow arr n dummy =
  if n < Array.length arr then arr
  else begin
    let arr' = Array.make (2 * Array.length arr) dummy in
    Array.blit arr 0 arr' 0 (Array.length arr);
    arr'
  end

let class_by_id reg cid =
  if cid < 0 || cid >= reg.n_classes then
    invalid_arg (Printf.sprintf "Rt.class_by_id: bad id %d" cid);
  reg.classes.(cid)

let method_by_uid reg uid =
  if uid < 0 || uid >= reg.n_methods then
    invalid_arg (Printf.sprintf "Rt.method_by_uid: bad uid %d" uid);
  reg.methods.(uid)

let find_class reg name =
  match Hashtbl.find_opt reg.by_name name with
  | None -> None
  | Some cid -> Some reg.classes.(cid)

let require_class reg name =
  match find_class reg name with
  | Some c -> c
  | None -> invalid_arg ("Rt.require_class: unknown class " ^ name)

(* Allocate a fresh method uid.  [cname] is the class name at load time,
   used to form the native dispatch key (stable across later renames). *)
let add_method reg ~owner ~cname ~(md : CF.Cls.meth) =
  let uid = reg.n_methods in
  reg.methods <- grow reg.methods uid dummy_method;
  let m =
    {
      uid;
      owner;
      m_name = md.CF.Cls.md_name;
      m_sig = md.CF.Cls.md_sig;
      m_access = md.CF.Cls.md_access;
      bytecode = md.CF.Cls.md_code;
      native_key =
        (if md.CF.Cls.md_access.CF.Access.is_native then
           Some
             (cname ^ "." ^ md.CF.Cls.md_name
             ^ CF.Types.msig_descriptor md.CF.Cls.md_sig)
         else None);
      max_locals = md.CF.Cls.md_max_locals;
      base_code = None;
      opt_code = None;
      invocations = 0;
      m_valid = true;
    }
  in
  reg.methods.(uid) <- m;
  reg.n_methods <- reg.n_methods + 1;
  m

let is_virtual (md : CF.Cls.meth) =
  (not md.CF.Cls.md_access.CF.Access.is_static)
  && md.CF.Cls.md_name <> CF.Cls.ctor_name
  && md.CF.Cls.md_access.CF.Access.visibility <> CF.Access.Private

(* Install a class: builds field layout (superclass fields first, preserving
   their offsets), assigns JTOC slots via [alloc_static], extends the
   superclass's vslot table and TIB for new virtual methods, and registers
   everything.  [replace] controls whether an existing name binding may be
   overwritten (used when installing updated versions). *)
let install_class reg ~(defn : CF.Cls.t) ~alloc_static ~replace : rt_class =
  let name = defn.CF.Cls.c_name in
  (match Hashtbl.find_opt reg.by_name name with
  | Some _ when not replace ->
      invalid_arg ("Rt.install_class: class already loaded: " ^ name)
  | _ -> ());
  let super =
    if String.equal name CF.Types.object_class then None
    else Some (require_class reg defn.CF.Cls.c_super)
  in
  let cid = reg.n_classes in
  reg.classes <- grow reg.classes cid dummy_class;
  (* instance field layout *)
  let inherited =
    match super with Some s -> s.instance_fields | None -> [||]
  in
  let base_off = Heap.header_words + Array.length inherited in
  let declared =
    defn.CF.Cls.c_fields
    |> List.filter (fun f -> not f.CF.Cls.fd_access.CF.Access.is_static)
  in
  let own =
    List.mapi
      (fun i (f : CF.Cls.field) ->
        {
          fi_name = f.CF.Cls.fd_name;
          fi_ty = f.CF.Cls.fd_ty;
          fi_access = f.CF.Cls.fd_access;
          fi_offset = base_off + i;
          fi_decl = name;
        })
      declared
  in
  let instance_fields = Array.append inherited (Array.of_list own) in
  (* statics *)
  let statics =
    defn.CF.Cls.c_fields
    |> List.filter (fun f -> f.CF.Cls.fd_access.CF.Access.is_static)
    |> List.map (fun (f : CF.Cls.field) ->
           {
             si_name = f.CF.Cls.fd_name;
             si_ty = f.CF.Cls.fd_ty;
             si_access = f.CF.Cls.fd_access;
             si_slot = alloc_static ();
           })
    |> Array.of_list
  in
  (* methods *)
  let methods =
    defn.CF.Cls.c_methods
    |> List.map (fun md -> add_method reg ~owner:cid ~cname:name ~md)
    |> Array.of_list
  in
  (* vslots / TIB: copy the superclass dispatch table, then bind declared
     virtual methods — overriding an inherited slot or appending a new one *)
  let vslots =
    ref (match super with Some s -> Array.to_list s.vslots | None -> [])
  in
  let tib =
    ref (match super with Some s -> Array.to_list s.tib | None -> [])
  in
  List.iteri
    (fun i (md : CF.Cls.meth) ->
      if is_virtual md then begin
        let key = mangle md.CF.Cls.md_name md.CF.Cls.md_sig in
        let uid = methods.(i).uid in
        match List.assoc_opt key !vslots with
        | Some slot ->
            tib := List.mapi (fun j u -> if j = slot then uid else u) !tib
        | None ->
            let slot = List.length !vslots in
            vslots := !vslots @ [ (key, slot) ];
            tib := !tib @ [ uid ]
      end)
    defn.CF.Cls.c_methods;
  let cls =
    {
      cid;
      name;
      super = (match super with Some s -> s.cid | None -> cid);
      instance_fields;
      static_fields = statics;
      vslots = Array.of_list !vslots;
      tib = Array.of_list !tib;
      methods;
      size_words = Heap.header_words + Array.length instance_fields;
      is_array = false;
      valid = true;
      defn = Some defn;
    }
  in
  reg.classes.(cid) <- cls;
  reg.n_classes <- reg.n_classes + 1;
  Hashtbl.replace reg.by_name name cid;
  cls

(* The one runtime class for arrays (element types are erased at runtime;
   MiniJava's static typing keeps array use sound without covariance). *)
let install_array_class reg =
  let cid = reg.n_classes in
  reg.classes <- grow reg.classes cid dummy_class;
  let obj = require_class reg CF.Types.object_class in
  let cls =
    {
      cid;
      name = "[]";
      super = obj.cid;
      instance_fields = [||];
      static_fields = [||];
      vslots = [||];
      tib = [||];
      methods = [||];
      size_words = Heap.array_header_words;
      is_array = true;
      valid = true;
      defn = None;
    }
  in
  reg.classes.(cid) <- cls;
  reg.n_classes <- reg.n_classes + 1;
  Hashtbl.replace reg.by_name "[]" cid;
  cls

(* Runtime subtype test for checkcast / instanceof. *)
let rec is_subclass_id reg ~sub ~super =
  sub = super
  ||
  let c = class_by_id reg sub in
  c.super <> c.cid && is_subclass_id reg ~sub:c.super ~super

let find_field_info (c : rt_class) fname =
  let n = Array.length c.instance_fields in
  let rec go i =
    if i >= n then None
    else if String.equal c.instance_fields.(i).fi_name fname then
      Some c.instance_fields.(i)
    else go (i + 1)
  in
  go 0

(* Static field resolution walks the hierarchy like instance fields do. *)
let rec find_static_info reg (c : rt_class) fname =
  let n = Array.length c.static_fields in
  let rec go i =
    if i >= n then
      if c.super = c.cid then None
      else find_static_info reg (class_by_id reg c.super) fname
    else if String.equal c.static_fields.(i).si_name fname then
      Some c.static_fields.(i)
    else go (i + 1)
  in
  go 0

let find_vslot (c : rt_class) key =
  let n = Array.length c.vslots in
  let rec go i =
    if i >= n then None
    else
      let k, slot = c.vslots.(i) in
      if String.equal k key then Some slot else go (i + 1)
  in
  go 0

(* Resolve a declared (non-virtual-dispatch) method by name+sig, walking up
   the hierarchy: used for invokestatic and invokedirect. *)
let rec resolve_method reg (c : rt_class) name msig =
  let found =
    Array.to_seq c.methods
    |> Seq.find (fun m ->
           String.equal m.m_name name && CF.Types.equal_msig m.m_sig msig)
  in
  match found with
  | Some m -> Some m
  | None ->
      if c.super = c.cid then None
      else resolve_method reg (class_by_id reg c.super) name msig

(* All valid classes, for iteration by the updater and debugging. *)
let iter_classes reg f =
  for i = 0 to reg.n_classes - 1 do
    f reg.classes.(i)
  done

let iter_methods reg f =
  for i = 0 to reg.n_methods - 1 do
    f reg.methods.(i)
  done
