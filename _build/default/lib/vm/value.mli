(** Word-level value encoding: one-bit pointer tagging.

    [0] is null; odd words are integers ([value = word asr 1]); even
    nonzero words are heap references ([address = word lsr 1]).  The tag
    makes every slot self-describing, giving the collector an exact
    root/field map with no separate stack-map metadata — the moral
    equivalent of Jikes RVM's compiler-generated stack maps. *)

val null : int

val of_int : int -> int
val to_int : int -> int
val of_bool : bool -> int
val to_bool : int -> bool

val of_ref : int -> int
(** Raises [Invalid_argument] on non-positive addresses. *)

val to_ref : int -> int

val is_null : int -> bool
val is_int : int -> bool
val is_ref : int -> bool

val true_w : int
val false_w : int

val to_string : int -> string
val pp : Format.formatter -> int -> unit
