(* Word-level value encoding.

   The heap, the JTOC (statics area), local variables and operand stacks all
   hold plain OCaml [int] words using a one-bit tag scheme, exactly like a
   real VM's pointer tagging:

     word = 0                      -> null
     word with low bit 1           -> boxed-free integer (value = word asr 1)
     word nonzero, low bit 0       -> heap reference (address = word lsr 1)

   The tag makes every slot self-describing, which gives the collector an
   exact root/field map without separate stack-map metadata.  (Jikes RVM
   derives the same information from compiler-generated stack maps; the
   encoding here is the moral equivalent and keeps the collector exact.)

   Booleans are integers 0/1.  Heap addresses are strictly positive so a
   reference word can never collide with null. *)

let null = 0

let of_int i = (i lsl 1) lor 1
let to_int w = w asr 1

let of_bool b = of_int (if b then 1 else 0)
let to_bool w = to_int w <> 0

let of_ref addr =
  if addr <= 0 then invalid_arg "Value.of_ref: non-positive address";
  addr lsl 1

let to_ref w = w lsr 1

let is_null w = w = 0
let is_int w = w land 1 = 1
let is_ref w = w <> 0 && w land 1 = 0

let true_w = of_bool true
let false_w = of_bool false

let to_string w =
  if is_null w then "null"
  else if is_int w then string_of_int (to_int w)
  else Printf.sprintf "@%d" (to_ref w)

let pp ppf w = Fmt.string ppf (to_string w)
