(** On-stack replacement (paper §3.2, "Lifting category (2)
    restrictions"): recompile an active method against current class
    metadata and re-locate its frame in the fresh code via the bc_map. *)

exception Osr_failed of string

val eligible : State.t -> State.frame -> bool
(** Base-compiled frames always; opt-compiled frames only with the
    [config.opt_osr] extension and only when parked outside every inlined
    region (there the locals/stack layout coincides with base code). *)

val replace_frame : State.t -> State.frame -> unit
(** Must run after the updated classes are installed (paper: "the exact
    timing of OSR for DSU requires the VM to first load modified
    classes").  Raises {!Osr_failed} on ineligible frames. *)
