(* The class loader: verifies class files and installs runtime metadata.

   Boot order: Object first, then the array class, then the remaining
   builtins, then user classes in superclass-topological order.  Static
   initializers (<clinit>) run synchronously after all classes are
   installed, in declaration order — consistent with the facade requiring a
   complete program up front. *)

module CF = Jv_classfile

exception Load_error of string list

(* Sort classes so every superclass precedes its subclasses. *)
let topo_sort (classes : CF.Cls.t list) : CF.Cls.t list =
  let by_name = Hashtbl.create 16 in
  List.iter (fun c -> Hashtbl.replace by_name c.CF.Cls.c_name c) classes;
  let visited = Hashtbl.create 16 in
  let out = ref [] in
  let rec visit (c : CF.Cls.t) =
    if not (Hashtbl.mem visited c.CF.Cls.c_name) then begin
      Hashtbl.add visited c.CF.Cls.c_name ();
      (match Hashtbl.find_opt by_name c.CF.Cls.c_super with
      | Some s when s.CF.Cls.c_name <> c.CF.Cls.c_name -> visit s
      | _ -> ());
      out := c :: !out
    end
  in
  List.iter visit classes;
  List.rev !out

let alloc_static_slot vm () = State.alloc_jtoc_slot vm

(* Install class files into the registry (no verification — callers verify
   first).  Returns installed classes in the order given. *)
let install vm ?(replace = false) (classes : CF.Cls.t list) : Rt.rt_class list
    =
  topo_sort classes
  |> List.map (fun defn ->
         Rt.install_class vm.State.reg ~defn
           ~alloc_static:(alloc_static_slot vm) ~replace)

(* Run a class's static initializer if it has one. *)
let run_clinit vm (rc : Rt.rt_class) =
  Array.iter
    (fun (m : Rt.rt_method) ->
      if String.equal m.Rt.m_name CF.Cls.clinit_name then
        ignore (Interp.call_sync vm m [||]))
    rc.Rt.methods

(* Boot a VM with the given user classes: injects builtins, verifies the
   whole program, installs everything, registers natives, runs <clinit>s.
   Raises [Load_error] on verification failure. *)
let boot vm (user_classes : CF.Cls.t list) : unit =
  let program = CF.Builtins.program_with user_classes in
  (match CF.Verifier.verify_program program with
  | [] -> ()
  | errs -> raise (Load_error errs));
  (* Object, then the array class, then everything else *)
  let obj =
    Rt.install_class vm.State.reg ~defn:CF.Builtins.object_cls
      ~alloc_static:(alloc_static_slot vm) ~replace:false
  in
  vm.State.object_cid <- obj.Rt.cid;
  let arr = Rt.install_array_class vm.State.reg in
  vm.State.array_cid <- arr.Rt.cid;
  let rest_builtins =
    List.filter
      (fun c -> c.CF.Cls.c_name <> CF.Types.object_class)
      CF.Builtins.all
  in
  let installed = install vm rest_builtins in
  List.iter
    (fun (rc : Rt.rt_class) ->
      if String.equal rc.Rt.name CF.Types.string_class then
        vm.State.string_cid <- rc.Rt.cid)
    installed;
  Natives.install vm;
  let user = install vm user_classes in
  (* static initializers, in user declaration order *)
  let order = List.map (fun c -> c.CF.Cls.c_name) user_classes in
  List.iter
    (fun name ->
      match List.find_opt (fun rc -> rc.Rt.name = name) user with
      | Some rc -> run_clinit vm rc
      | None -> ())
    order

(* Spawn the program's main thread: [Main.main()] static void no-args. *)
let spawn_main vm ~main_class : State.vthread =
  let rc = Rt.require_class vm.State.reg main_class in
  let msig = { CF.Types.params = []; ret = CF.Types.TVoid } in
  match Rt.resolve_method vm.State.reg rc "main" msig with
  | None -> State.fatal "class %s has no static void main()" main_class
  | Some m ->
      if not m.Rt.m_access.CF.Access.is_static then
        State.fatal "%s.main() must be static" main_class;
      let code = Jit.ensure_base vm m in
      m.Rt.invocations <- m.Rt.invocations + 1;
      let fr = State.make_frame m code [||] in
      State.new_thread vm [ fr ]
