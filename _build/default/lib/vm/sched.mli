(** The green-thread scheduler.  One [round] = one logical tick: harness
    pollers run, ready blocked threads resume, every runnable thread gets
    one quantum.  Threads park only at VM safe points, so between slices
    the world is stopped — which is when the DSU attempt hook runs (and
    immediately after any return barrier fires). *)

val block_ready : State.t -> State.block_reason -> bool
val wake_blocked : State.t -> unit
val reap : State.t -> unit
val round : State.t -> unit
val run_rounds : State.t -> int -> unit

val progress_possible : State.t -> bool
(** Can any thread still advance without outside help?  (A pending DSU
    attempt counts: it will resolve or time out.) *)

val run_to_quiescence :
  ?max_rounds:int -> State.t -> [ `All_done | `Deadlocked | `Max_rounds ]
