(** Native method implementations for the builtin classes (String, Sys,
    Net, Thread, Jvolve).

    GC-safety rule for natives: decode every reference argument into
    OCaml data {e before} the first heap allocation, and reserve total
    space up front ([State.ensure_free]) when allocating several objects
    — native frames are invisible to the collector. *)

val install : State.t -> unit
(** Register all builtin natives in [vm.natives]. *)
