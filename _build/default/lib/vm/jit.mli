(** The JIT: verified bytecode → resolved machine code.

    The {e base} compiler is an exactly-1:1 translation that burns current
    class metadata into the code: field names become word offsets, statics
    become JTOC slots, virtual calls become TIB slot indices.  (The 1:1
    property makes base-compiled frames trivially relocatable by OSR.)
    The {e opt} compiler additionally inlines small static/direct callees,
    recording what it inlined and which machine-pc spans the inlined
    bodies occupy.  Updates that change a class's layout make other
    methods' compiled code stale — the paper's category-(2) phenomenon —
    which is why compilation is resolution, not interpretation. *)

exception Compile_error of string

val compile : State.t -> Rt.rt_method -> Machine.level -> Machine.compiled

val ensure_base : State.t -> Rt.rt_method -> Machine.compiled
(** Compile-on-demand (caches in [rt_method.base_code]). *)

val best_code : State.t -> Rt.rt_method -> Machine.compiled
(** Opt code if present, else base. *)

val maybe_opt : State.t -> Rt.rt_method -> unit
(** Adaptive recompilation: opt-compile once the invocation counter
    crosses [config.opt_threshold]. *)
