lib/simnet/simnet.mli:
