lib/simnet/simnet.ml: Hashtbl List Printf String
