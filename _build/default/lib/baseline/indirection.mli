(** The lazy, indirection-based baseline, modeled on JDrums and the
    Dynamic Virtual Machine (paper §5): objects migrate on first
    dereference through a handle table, so every dereference pays a
    check — update or no update.  Requires a VM created with
    [indirection_mode = true].  Lazy transformation applies the default
    field-copying transformer only (custom lazy transformers are unsound
    in general — paper §3.5). *)

module Rt = Jv_vm.Rt

type lazy_state = {
  pending : (int, int) Hashtbl.t;  (** old class id -> new class id *)
  field_map : (int, (int * int) list) Hashtbl.t;
      (** old class id -> (old offset, new offset) copy pairs *)
  max_new_words : int;
  mutable transformed : int;  (** objects migrated so far *)
}

exception Lazy_error of string

val apply :
  Jv_vm.State.t -> Jvolve_core.Transformers.prepared ->
  (lazy_state, string) result
(** Install the new class metadata eagerly and arm the dereference hook;
    objects migrate on demand.  Fails (rather than waiting) if restricted
    methods are on stack — lazy systems have no barrier machinery. *)

val deref_checks : Jv_vm.State.t -> int
(** How many dereference checks this VM has paid for (the baseline's
    steady-state tax; counted even with no update in flight). *)
