lib/baseline/indirection.ml: Array Hashtbl Jv_classfile Jv_vm Jvolve_core List String
