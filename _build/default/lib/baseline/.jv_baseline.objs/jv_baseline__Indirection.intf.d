lib/baseline/indirection.mli: Hashtbl Jv_vm Jvolve_core
