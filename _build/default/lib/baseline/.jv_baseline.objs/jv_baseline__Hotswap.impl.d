lib/baseline/hotswap.ml: Jv_vm Jvolve_core List Printf String
