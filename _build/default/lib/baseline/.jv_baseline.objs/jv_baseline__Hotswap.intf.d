lib/baseline/hotswap.mli: Jv_vm Jvolve_core
