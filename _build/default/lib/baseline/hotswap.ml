(* The "edit-and-continue" baseline: method-body-only updating, as provided
   by HotSpot's HotSwap, .NET E&C, and PROSE (paper §5).

   Such systems replace method bodies so the *next* invocation runs the new
   code, but they support nothing else: no signature changes, no field or
   method additions/deletions, no new or removed classes.  The paper uses
   this class of systems as the flexibility baseline: they can handle only
   9 of the 22 benchmark updates. *)

module State = Jv_vm.State
module J = Jvolve_core

type result =
  | Applied of int (* number of method bodies swapped *)
  | Unsupported of string

(* Would this update be expressible at all?  (The flexibility check used by
   the experience tables.) *)
let supported (diff : J.Diff.t) : bool = J.Diff.method_body_only_supported diff

let why_unsupported (diff : J.Diff.t) : string =
  let parts = [] in
  let parts =
    if diff.J.Diff.class_updates <> [] then
      Printf.sprintf "class signature changes (%s)"
        (String.concat ", " diff.J.Diff.class_updates)
      :: parts
    else parts
  in
  let parts =
    if diff.J.Diff.added_classes <> [] then
      Printf.sprintf "added classes (%s)"
        (String.concat ", " diff.J.Diff.added_classes)
      :: parts
    else parts
  in
  let parts =
    if diff.J.Diff.deleted_classes <> [] then
      Printf.sprintf "deleted classes (%s)"
        (String.concat ", " diff.J.Diff.deleted_classes)
      :: parts
    else parts
  in
  let parts =
    if diff.J.Diff.super_changes <> [] then "superclass changes" :: parts
    else parts
  in
  String.concat "; " (List.rev parts)

(* Apply a body-only update with next-invocation semantics: no safe point,
   no barriers, no object work.  Running activations keep executing old
   code — the E&C model. *)
let apply vm (spec : J.Spec.t) : result =
  if not (supported spec.J.Spec.diff) then
    Unsupported (why_unsupported spec.J.Spec.diff)
  else begin
    (* compute restricted sets first: opt code that inlined a swapped body
       must be thrown away even in the E&C model *)
    let restricted = J.Safepoint.compute vm spec in
    J.Updater.swap_method_bodies vm spec;
    ignore (J.Updater.invalidate_stale_code vm restricted);
    Applied (List.length spec.J.Spec.diff.J.Diff.body_updates)
  end
