(** The "edit-and-continue" baseline: method-body-only updating, as in
    HotSpot's HotSwap, .NET E&C, and PROSE (paper §5).  Bodies are
    replaced with next-invocation semantics — no safe point, no object
    work — but nothing beyond bodies is expressible: the paper's
    flexibility baseline (9 of the 22 benchmark updates). *)

type result =
  | Applied of int  (** number of method bodies swapped *)
  | Unsupported of string

val supported : Jvolve_core.Diff.t -> bool
val why_unsupported : Jvolve_core.Diff.t -> string
val apply : Jv_vm.State.t -> Jvolve_core.Spec.t -> result
