(* Version construction for the benchmark applications.

   Each application release is derived from its predecessor by an explicit
   list of (old fragment -> new fragment) source patches, exactly like the
   real release diffs the paper studies.  Building versions this way
   guarantees that untouched code is byte-identical across releases, which
   is what makes the UPT's change classification meaningful. *)

exception Patch_error of string

let count_occurrences hay needle =
  let n = String.length hay and m = String.length needle in
  if m = 0 then 0
  else begin
    let c = ref 0 in
    let i = ref 0 in
    while !i + m <= n do
      if String.sub hay !i m = needle then begin
        incr c;
        i := !i + m
      end
      else incr i
    done;
    !c
  end

let replace_once hay ~old_frag ~new_frag =
  match count_occurrences hay old_frag with
  | 0 ->
      raise
        (Patch_error
           (Printf.sprintf "fragment not found:\n%s"
              (if String.length old_frag > 200 then
                 String.sub old_frag 0 200 ^ "..."
               else old_frag)))
  | 1 ->
      let m = String.length old_frag in
      let n = String.length hay in
      let rec find i =
        if String.sub hay i m = old_frag then i else find (i + 1)
      in
      let i = find 0 in
      String.sub hay 0 i ^ new_frag ^ String.sub hay (i + m) (n - i - m)
  | k ->
      raise
        (Patch_error
           (Printf.sprintf "fragment ambiguous (%d occurrences):\n%s" k
              old_frag))

(* Apply an ordered list of single-occurrence replacements. *)
let patch (src : string) (edits : (string * string) list) : string =
  List.fold_left
    (fun acc (old_frag, new_frag) -> replace_once acc ~old_frag ~new_frag)
    src edits

(* A versioned application: the name of each release paired with its full
   source, v(n+1) derived from v(n). *)
type versioned = {
  app_name : string;
  versions : (string * string) list; (* (version name, source), oldest first *)
}

let build ~app_name ~base_version ~base_src
    ~(releases : (string * (string * string) list) list) : versioned =
  let rec go acc prev = function
    | [] -> List.rev acc
    | (ver, edits) :: rest ->
        let src =
          try patch prev edits
          with Patch_error e ->
            raise
              (Patch_error
                 (Printf.sprintf "%s %s: %s" app_name ver e))
        in
        go ((ver, src) :: acc) src rest
  in
  {
    app_name;
    versions = (base_version, base_src) :: go [] base_src releases;
  }

let source v ~version =
  match List.assoc_opt version v.versions with
  | Some s -> s
  | None ->
      raise
        (Patch_error (Printf.sprintf "%s: unknown version %s" v.app_name version))

(* Consecutive (from, to) pairs: the update chain the experience harness
   walks. *)
let update_pairs v =
  let rec go = function
    | (a, sa) :: ((b, sb) :: _ as rest) -> ((a, sa), (b, sb)) :: go rest
    | _ -> []
  in
  go v.versions
