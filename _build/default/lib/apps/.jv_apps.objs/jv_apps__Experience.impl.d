lib/apps/experience.ml: Fmt Jv_baseline Jv_lang Jv_vm Jvolve_core List Miniftp Minimail Miniweb Patching Printf String Workload
