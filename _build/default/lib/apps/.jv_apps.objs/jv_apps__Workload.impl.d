lib/apps/workload.ml: Jv_simnet Jv_vm List String
