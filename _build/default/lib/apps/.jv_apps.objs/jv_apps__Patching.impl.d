lib/apps/patching.ml: List Printf String
