lib/apps/miniweb.ml: Patching
