lib/apps/miniftp.ml: Patching
