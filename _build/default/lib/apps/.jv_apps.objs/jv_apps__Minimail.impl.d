lib/apps/minimail.ml: Patching
