(* The Update Preparation Tool (UPT), part 1: diffing two program versions.

   Mirrors the paper's §3.1: changes are grouped into
   - *class updates*: the class signature changed (fields or methods added,
     deleted, or with changed types/modifiers),
   - *method body updates*: only a method's implementation changed,
   - *indirect method updates*: methods whose bytecode is unchanged but
     which refer to updated classes, so their compiled code (hard-coded
     offsets, TIB slots) is stale.

   The diff also carries the per-release statistics reported in the paper's
   Tables 2-4. *)

module CF = Jv_classfile

type mref = { r_class : string; r_name : string; r_sig : CF.Types.msig }

let mref_to_string r =
  Printf.sprintf "%s.%s%s" r.r_class r.r_name
    (CF.Types.msig_descriptor r.r_sig)

(* Per-release change statistics (one row of Tables 2/3/4). *)
type stats = {
  s_classes_added : int;
  s_classes_deleted : int;
  s_classes_changed : int;
  s_methods_added : int;
  s_methods_deleted : int;
  s_methods_changed_body : int; (* the "x" of the paper's "x/y" column *)
  s_methods_changed_sig : int; (* the "y" *)
  s_fields_added : int;
  s_fields_deleted : int;
}

let empty_stats =
  {
    s_classes_added = 0;
    s_classes_deleted = 0;
    s_classes_changed = 0;
    s_methods_added = 0;
    s_methods_deleted = 0;
    s_methods_changed_body = 0;
    s_methods_changed_sig = 0;
    s_fields_added = 0;
    s_fields_deleted = 0;
  }

type t = {
  added_classes : string list;
  deleted_classes : string list;
  class_updates : string list; (* direct signature changes *)
  class_updates_closure : string list;
      (* class updates plus every (new-program) subclass of one: their
         instance layout changes too, so their objects must be transformed *)
  body_updates : mref list;
  indirect_methods : mref list;
  super_changes : string list; (* unsupported by Jvolve *)
  stats : stats;
}

let is_class_update d name = List.mem name d.class_updates_closure

(* field sets compared by (name, type, modifiers) *)
let field_key (f : CF.Cls.field) =
  (f.CF.Cls.fd_name, CF.Types.descriptor f.CF.Cls.fd_ty,
   CF.Access.to_string f.CF.Cls.fd_access)

let meth_header_key (m : CF.Cls.meth) =
  (m.CF.Cls.md_name, CF.Types.msig_descriptor m.CF.Cls.md_sig,
   CF.Access.to_string m.CF.Cls.md_access)

let diff_class (oldc : CF.Cls.t) (newc : CF.Cls.t) =
  let old_fields = List.map field_key oldc.CF.Cls.c_fields in
  let new_fields = List.map field_key newc.CF.Cls.c_fields in
  let fields_added =
    List.filter (fun k -> not (List.mem k old_fields)) new_fields
  in
  let fields_deleted =
    List.filter (fun k -> not (List.mem k new_fields)) old_fields
  in
  let old_meths = List.map meth_header_key oldc.CF.Cls.c_methods in
  let new_meths = List.map meth_header_key newc.CF.Cls.c_methods in
  let meths_added =
    List.filter (fun k -> not (List.mem k old_meths)) new_meths
  in
  let meths_deleted =
    List.filter (fun k -> not (List.mem k new_meths)) old_meths
  in
  (* a method whose (name, arity-shape) persists but whose signature changed
     shows up as one add + one delete; pair them up as signature changes,
     matching how the paper reports "x/y" *)
  let name_of (n, _, _) = n in
  let sig_changed =
    List.filter
      (fun k -> List.exists (fun k' -> name_of k' = name_of k) meths_deleted)
      meths_added
  in
  let body_changed =
    List.filter_map
      (fun (m : CF.Cls.meth) ->
        match CF.Cls.find_method newc m.CF.Cls.md_name m.CF.Cls.md_sig with
        | Some m' when CF.Access.equal m.CF.Cls.md_access m'.CF.Cls.md_access
          ->
            if CF.Cls.equal_meth_code m m' then None
            else Some (m.CF.Cls.md_name, m.CF.Cls.md_sig)
        | _ -> None)
      oldc.CF.Cls.c_methods
  in
  let super_changed = not (String.equal oldc.CF.Cls.c_super newc.CF.Cls.c_super) in
  let signature_changed =
    fields_added <> [] || fields_deleted <> [] || meths_added <> []
    || meths_deleted <> [] || super_changed
  in
  ( signature_changed,
    super_changed,
    body_changed,
    List.length fields_added,
    List.length fields_deleted,
    List.length meths_added - List.length sig_changed,
    List.length meths_deleted - List.length sig_changed,
    List.length sig_changed )

let subclasses_closure (newp : CF.Cls.program) (seeds : string list) :
    string list =
  let result = Hashtbl.create 16 in
  List.iter (fun s -> Hashtbl.replace result s ()) seeds;
  let changed = ref true in
  while !changed do
    changed := false;
    Hashtbl.iter
      (fun _ (c : CF.Cls.t) ->
        if
          (not (Hashtbl.mem result c.CF.Cls.c_name))
          && Hashtbl.mem result c.CF.Cls.c_super
          && not (String.equal c.CF.Cls.c_name CF.Types.object_class)
        then begin
          Hashtbl.replace result c.CF.Cls.c_name ();
          changed := true
        end)
      newp
  done;
  Hashtbl.fold (fun k () acc -> k :: acc) result [] |> List.sort compare

(* Which of a program's methods reference any class in [targets]?  Includes
   references through field/method types in signatures. *)
let methods_referencing (prog : CF.Cls.program) (targets : string list) :
    mref list =
  let tgt = Hashtbl.create 16 in
  List.iter (fun c -> Hashtbl.replace tgt c ()) targets;
  CF.Cls.program_to_list prog
  |> List.concat_map (fun (c : CF.Cls.t) ->
         List.filter_map
           (fun (m : CF.Cls.meth) ->
             match m.CF.Cls.md_code with
             | None -> None
             | Some code ->
                 if
                   List.exists (Hashtbl.mem tgt)
                     (CF.Instr.code_referenced_classes code)
                 then
                   Some
                     {
                       r_class = c.CF.Cls.c_name;
                       r_name = m.CF.Cls.md_name;
                       r_sig = m.CF.Cls.md_sig;
                     }
                 else None)
           c.CF.Cls.c_methods)

let compute ~(old_program : CF.Cls.t list) ~(new_program : CF.Cls.t list) : t =
  let oldp = CF.Cls.program_of_list old_program in
  let newp = CF.Cls.program_of_list new_program in
  let old_names = List.map (fun c -> c.CF.Cls.c_name) old_program in
  let new_names = List.map (fun c -> c.CF.Cls.c_name) new_program in
  let added = List.filter (fun n -> not (List.mem n old_names)) new_names in
  let deleted = List.filter (fun n -> not (List.mem n new_names)) old_names in
  let stats = ref { empty_stats with
                    s_classes_added = List.length added;
                    s_classes_deleted = List.length deleted } in
  let class_updates = ref [] in
  let super_changes = ref [] in
  let body_updates = ref [] in
  List.iter
    (fun oldc ->
      match CF.Cls.find_class newp oldc.CF.Cls.c_name with
      | None -> ()
      | Some newc ->
          let ( sig_changed,
                super_changed,
                body_changed,
                fa,
                fd,
                ma,
                md,
                msig ) =
            diff_class oldc newc
          in
          if sig_changed || body_changed <> [] then
            stats :=
              { !stats with s_classes_changed = !stats.s_classes_changed + 1 };
          stats :=
            {
              !stats with
              s_fields_added = !stats.s_fields_added + fa;
              s_fields_deleted = !stats.s_fields_deleted + fd;
              s_methods_added = !stats.s_methods_added + ma;
              s_methods_deleted = !stats.s_methods_deleted + md;
              s_methods_changed_sig = !stats.s_methods_changed_sig + msig;
              s_methods_changed_body =
                !stats.s_methods_changed_body + List.length body_changed;
            };
          if super_changed then
            super_changes := oldc.CF.Cls.c_name :: !super_changes;
          if sig_changed then
            class_updates := oldc.CF.Cls.c_name :: !class_updates
          else
            body_updates :=
              List.map
                (fun (n, s) ->
                  { r_class = oldc.CF.Cls.c_name; r_name = n; r_sig = s })
                body_changed
              @ !body_updates)
    old_program;
  let class_updates = List.rev !class_updates in
  (* layout changes propagate to every subclass that survives into the new
     program (paper §2.2: hierarchy-level changes "propagate correctly to
     the class's descendants") *)
  let closure =
    subclasses_closure newp class_updates
    |> List.filter (fun n -> List.mem n old_names) (* must exist in old *)
  in
  (* indirect updates: unchanged-bytecode methods in the OLD program that
     mention an updated (or deleted) class; exclude methods that are
     themselves updated *)
  let updated_or_deleted = closure @ deleted in
  let changed_method r =
    List.mem r.r_class closure
    || List.exists
         (fun b ->
           String.equal b.r_class r.r_class
           && String.equal b.r_name r.r_name
           && CF.Types.equal_msig b.r_sig r.r_sig)
         !body_updates
  in
  let indirect =
    methods_referencing oldp updated_or_deleted
    |> List.filter (fun r -> not (changed_method r))
  in
  {
    added_classes = added;
    deleted_classes = deleted;
    class_updates;
    class_updates_closure = closure;
    body_updates = List.rev !body_updates;
    indirect_methods = indirect;
    super_changes = List.rev !super_changes;
    stats = !stats;
  }

(* Would a method-body-only DSU system (HotSwap / edit-and-continue) support
   this update?  Paper §4: "previous systems with simple support for
   updating method bodies would be able to handle only 9 of the 22
   updates". *)
let method_body_only_supported d =
  d.added_classes = [] && d.deleted_classes = [] && d.class_updates = []
  && d.super_changes = []

let summary d =
  Printf.sprintf
    "classes +%d -%d ~%d | methods +%d -%d chg %d/%d | fields +%d -%d%s"
    d.stats.s_classes_added d.stats.s_classes_deleted
    d.stats.s_classes_changed d.stats.s_methods_added
    d.stats.s_methods_deleted d.stats.s_methods_changed_body
    d.stats.s_methods_changed_sig d.stats.s_fields_added
    d.stats.s_fields_deleted
    (if d.super_changes <> [] then " [super changes!]" else "")
