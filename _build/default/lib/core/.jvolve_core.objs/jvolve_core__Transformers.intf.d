lib/core/transformers.mli: Jv_classfile Spec
