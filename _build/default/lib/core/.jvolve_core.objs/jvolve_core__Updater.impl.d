lib/core/updater.ml: Array Diff Hashtbl Jv_classfile Jv_vm List Option Printf Safepoint Seq Spec String Transformers Unix
