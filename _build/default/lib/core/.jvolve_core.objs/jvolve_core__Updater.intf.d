lib/core/updater.mli: Jv_vm Safepoint Spec Transformers
