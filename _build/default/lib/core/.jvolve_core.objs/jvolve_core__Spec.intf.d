lib/core/spec.mli: Diff Jv_classfile
