lib/core/transformers.ml: Buffer Diff Jv_classfile Jv_lang List Option Printf Spec String
