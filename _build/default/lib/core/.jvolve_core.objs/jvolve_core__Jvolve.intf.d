lib/core/jvolve.mli: Jv_vm Safepoint Spec Transformers Updater
