lib/core/spec.ml: Diff Jv_classfile Printf String
