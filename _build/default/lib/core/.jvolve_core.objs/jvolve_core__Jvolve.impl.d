lib/core/jvolve.ml: Jv_vm Printf Safepoint Spec Transformers Unix Updater
