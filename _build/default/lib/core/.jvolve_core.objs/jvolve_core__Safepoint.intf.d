lib/core/safepoint.mli: Diff Jv_vm Set Spec
