lib/core/diff.ml: Hashtbl Jv_classfile List Printf String
