lib/core/diff.mli: Jv_classfile
