lib/core/safepoint.ml: Array Diff Int Jv_vm List Printf Set Spec String
