(** The Update Preparation Tool's diff engine (paper §3.1).

    Compares two program versions and classifies every change the way
    Jvolve's update model needs: {e class updates} (signature/layout
    changes), {e method body updates}, and {e indirect method updates}
    (category-2: unchanged bytecode whose compiled form hard-codes offsets
    of an updated class).  Also produces the per-release statistics
    reported in the paper's Tables 2-4. *)

module CF = Jv_classfile

(** A fully-qualified method reference. *)
type mref = { r_class : string; r_name : string; r_sig : CF.Types.msig }

val mref_to_string : mref -> string

(** One row of the paper's per-release change tables. *)
type stats = {
  s_classes_added : int;
  s_classes_deleted : int;
  s_classes_changed : int;
  s_methods_added : int;
  s_methods_deleted : int;
  s_methods_changed_body : int;  (** the "x" of the paper's "x/y" column *)
  s_methods_changed_sig : int;  (** the "y" *)
  s_fields_added : int;
  s_fields_deleted : int;
}

val empty_stats : stats

(** The complete classification of one release's changes. *)
type t = {
  added_classes : string list;
  deleted_classes : string list;
  class_updates : string list;  (** direct signature changes *)
  class_updates_closure : string list;
      (** class updates plus every surviving subclass of one: their
          instance layout changes too, so their objects must also be
          transformed (paper §2.2: hierarchy changes "propagate correctly
          to the class's descendants") *)
  body_updates : mref list;
  indirect_methods : mref list;
      (** category (2): bytecode unchanged, compiled code stale *)
  super_changes : string list;  (** unsupported by Jvolve (paper §2.2) *)
  stats : stats;
}

(** Is [name] in the layout-change closure of this diff? *)
val is_class_update : t -> string -> bool

(** Diff two versions given as complete class-file lists. *)
val compute : old_program:CF.Cls.t list -> new_program:CF.Cls.t list -> t

(** Could a method-body-only DSU system (HotSwap / edit-and-continue /
    PROSE) express this update at all?  Paper §4: such systems support
    only 9 of the 22 benchmark updates. *)
val method_body_only_supported : t -> bool

(** One-line human-readable change summary (the table row). *)
val summary : t -> string
