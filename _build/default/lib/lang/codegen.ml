(* Bytecode generation from the typed AST.

   Yield points are inserted here, mirroring Jikes RVM's compilers: one on
   method entry and one at every loop header (back edge), so a running
   thread always reaches a VM safe point in bounded time. *)

module CF = Jv_classfile
open Tast

(* emission buffer with label patching *)
type label = int

type ebuf = {
  mutable code : CF.Instr.t array;
  mutable n : int;
  mutable labels : int array; (* label -> pc, -1 if unmarked *)
  mutable n_labels : int;
  mutable patches : (int * label) list; (* instr idx to patch, label *)
}

let new_ebuf () =
  {
    code = Array.make 32 CF.Instr.Return;
    n = 0;
    labels = Array.make 16 (-1);
    n_labels = 0;
    patches = [];
  }

let emit b i =
  if b.n >= Array.length b.code then begin
    let c = Array.make (2 * Array.length b.code) CF.Instr.Return in
    Array.blit b.code 0 c 0 b.n;
    b.code <- c
  end;
  b.code.(b.n) <- i;
  b.n <- b.n + 1

let new_label b =
  if b.n_labels >= Array.length b.labels then begin
    let l = Array.make (2 * Array.length b.labels) (-1) in
    Array.blit b.labels 0 l 0 b.n_labels;
    b.labels <- l
  end;
  let l = b.n_labels in
  b.n_labels <- l + 1;
  l

let mark b l = b.labels.(l) <- b.n

let emit_branch b mk l =
  b.patches <- (b.n, l) :: b.patches;
  emit b (mk (-1))

let finish b : CF.Instr.t array =
  List.iter
    (fun (idx, l) ->
      let target = b.labels.(l) in
      assert (target >= 0);
      b.code.(idx) <-
        (match b.code.(idx) with
        | CF.Instr.If_true _ -> CF.Instr.If_true target
        | CF.Instr.If_false _ -> CF.Instr.If_false target
        | CF.Instr.Goto _ -> CF.Instr.Goto target
        | _ -> assert false))
    b.patches;
  Array.sub b.code 0 b.n

(* loop context for break/continue *)
type loop_ctx = { l_break : label; l_continue : label }

let string_concat_ref : CF.Instr.method_ref =
  {
    CF.Instr.m_class = CF.Types.string_class;
    m_name = "concat";
    m_sig = { CF.Types.params = [ CF.Types.t_string ]; ret = CF.Types.t_string };
  }

let string_of_int_ref : CF.Instr.method_ref =
  {
    CF.Instr.m_class = CF.Types.string_class;
    m_name = "ofInt";
    m_sig = { CF.Types.params = [ CF.Types.TInt ]; ret = CF.Types.t_string };
  }

let rec gen_expr b (e : texpr) : unit =
  match e.te with
  | T_int i -> emit b (CF.Instr.Const_int i)
  | T_bool v -> emit b (CF.Instr.Const_bool v)
  | T_str s -> emit b (CF.Instr.Const_str s)
  | T_null -> emit b CF.Instr.Const_null
  | T_this -> emit b (CF.Instr.Load 0)
  | T_local slot -> emit b (CF.Instr.Load slot)
  | T_get_field (r, fr) ->
      gen_expr b r;
      emit b (CF.Instr.Get_field fr)
  | T_get_static fr -> emit b (CF.Instr.Get_static fr)
  | T_array_len a ->
      gen_expr b a;
      emit b CF.Instr.Array_len
  | T_index (a, i) ->
      gen_expr b a;
      gen_expr b i;
      emit b (CF.Instr.Array_load e.tty)
  | T_call (kind, recv, mref, args) ->
      (match recv with Some r -> gen_expr b r | None -> ());
      List.iter (gen_expr b) args;
      emit b
        (match kind with
        | C_virtual -> CF.Instr.Invoke_virtual mref
        | C_direct -> CF.Instr.Invoke_direct mref
        | C_static -> CF.Instr.Invoke_static mref)
  | T_new (ctor, args) ->
      emit b (CF.Instr.New_obj ctor.CF.Instr.m_class);
      emit b CF.Instr.Dup;
      List.iter (gen_expr b) args;
      emit b (CF.Instr.Invoke_direct ctor)
  | T_new_array (elem, len) ->
      gen_expr b len;
      emit b (CF.Instr.New_array elem)
  | T_binop (B_arith op, x, y) ->
      gen_expr b x;
      gen_expr b y;
      emit b (CF.Instr.Binop op)
  | T_binop (B_icmp c, x, y) ->
      gen_expr b x;
      gen_expr b y;
      emit b (CF.Instr.Icmp c)
  | T_binop (B_acmp eq, x, y) ->
      gen_expr b x;
      gen_expr b y;
      emit b (if eq then CF.Instr.Acmp_eq else CF.Instr.Acmp_ne)
  | T_binop (B_concat, x, y) ->
      gen_expr b x;
      gen_expr b y;
      emit b (CF.Instr.Invoke_virtual string_concat_ref)
  | T_binop (B_and, x, y) ->
      (* x ? y : false *)
      let l_false = new_label b and l_end = new_label b in
      gen_expr b x;
      emit_branch b (fun t -> CF.Instr.If_false t) l_false;
      gen_expr b y;
      emit_branch b (fun t -> CF.Instr.Goto t) l_end;
      mark b l_false;
      emit b (CF.Instr.Const_bool false);
      mark b l_end
  | T_binop (B_or, x, y) ->
      let l_true = new_label b and l_end = new_label b in
      gen_expr b x;
      emit_branch b (fun t -> CF.Instr.If_true t) l_true;
      gen_expr b y;
      emit_branch b (fun t -> CF.Instr.Goto t) l_end;
      mark b l_true;
      emit b (CF.Instr.Const_bool true);
      mark b l_end
  | T_not x ->
      gen_expr b x;
      emit b CF.Instr.Bnot
  | T_neg x ->
      gen_expr b x;
      emit b CF.Instr.Neg
  | T_int_to_string x ->
      gen_expr b x;
      emit b (CF.Instr.Invoke_static string_of_int_ref)
  | T_cast (ty, x) ->
      gen_expr b x;
      emit b (CF.Instr.Check_cast ty)
  | T_instanceof (ty, x) ->
      gen_expr b x;
      emit b (CF.Instr.Instance_of ty)

let rec gen_stmt b (loops : loop_ctx list) (s : tstmt) : unit =
  match s with
  | Ts_nop -> ()
  | Ts_seq ss -> List.iter (gen_stmt b loops) ss
  | Ts_if (c, a, bo) -> (
      let l_else = new_label b in
      gen_expr b c;
      emit_branch b (fun t -> CF.Instr.If_false t) l_else;
      gen_stmt b loops a;
      match bo with
      | None -> mark b l_else
      | Some eb ->
          let l_end = new_label b in
          emit_branch b (fun t -> CF.Instr.Goto t) l_end;
          mark b l_else;
          gen_stmt b loops eb;
          mark b l_end)
  | Ts_while (c, body) ->
      let l_head = new_label b and l_end = new_label b in
      mark b l_head;
      emit b (CF.Instr.Yield CF.Instr.Y_backedge);
      gen_expr b c;
      emit_branch b (fun t -> CF.Instr.If_false t) l_end;
      gen_stmt b ({ l_break = l_end; l_continue = l_head } :: loops) body;
      emit_branch b (fun t -> CF.Instr.Goto t) l_head;
      mark b l_end
  | Ts_for (init, cond, step, body) ->
      gen_stmt b loops init;
      let l_head = new_label b
      and l_step = new_label b
      and l_end = new_label b in
      mark b l_head;
      emit b (CF.Instr.Yield CF.Instr.Y_backedge);
      (match cond with
      | Some c ->
          gen_expr b c;
          emit_branch b (fun t -> CF.Instr.If_false t) l_end
      | None -> ());
      gen_stmt b ({ l_break = l_end; l_continue = l_step } :: loops) body;
      mark b l_step;
      gen_stmt b loops step;
      emit_branch b (fun t -> CF.Instr.Goto t) l_head;
      mark b l_end
  | Ts_return None -> emit b CF.Instr.Return
  | Ts_return (Some e) ->
      gen_expr b e;
      emit b CF.Instr.Return_val
  | Ts_break -> (
      match loops with
      | l :: _ -> emit_branch b (fun t -> CF.Instr.Goto t) l.l_break
      | [] -> assert false)
  | Ts_continue -> (
      match loops with
      | l :: _ -> emit_branch b (fun t -> CF.Instr.Goto t) l.l_continue
      | [] -> assert false)
  | Ts_expr e ->
      gen_expr b e;
      if not (CF.Types.equal_ty e.tty CF.Types.TVoid) then emit b CF.Instr.Pop
  | Ts_set_local (slot, e) ->
      gen_expr b e;
      emit b (CF.Instr.Store slot)
  | Ts_set_field (r, fr, v) ->
      gen_expr b r;
      gen_expr b v;
      emit b (CF.Instr.Put_field fr)
  | Ts_set_static (fr, v) ->
      gen_expr b v;
      emit b (CF.Instr.Put_static fr)
  | Ts_set_index (a, i, v, elem) ->
      gen_expr b a;
      gen_expr b i;
      gen_expr b v;
      emit b (CF.Instr.Array_store elem)

let gen_method (m : tmethod) : CF.Cls.meth =
  let code =
    match m.tm_body with
    | None -> None
    | Some body ->
        let b = new_ebuf () in
        emit b (CF.Instr.Yield CF.Instr.Y_entry);
        List.iter (gen_stmt b []) body;
        (* void methods (and constructors) may fall off the end *)
        if CF.Types.equal_ty m.tm_sig.CF.Types.ret CF.Types.TVoid then
          emit b CF.Instr.Return;
        Some (finish b)
  in
  {
    CF.Cls.md_name = m.tm_name;
    md_sig = m.tm_sig;
    md_access = m.tm_access;
    md_max_locals = m.tm_max_locals;
    md_code = code;
  }

let gen_class (c : tclass) : CF.Cls.t =
  {
    CF.Cls.c_name = c.tc_name;
    c_super = c.tc_super;
    c_fields = c.tc_fields;
    c_methods = List.map gen_method c.tc_methods;
  }
