(* Hand-written lexer for MiniJava. *)

type token_kind =
  | T_int of int
  | T_string of string
  | T_ident of string
  | T_kw of string (* keywords *)
  | T_punct of string (* operators and punctuation *)
  | T_eof

type token = { tk : token_kind; tpos : Ast.pos }

exception Lex_error of string * Ast.pos

let keywords =
  [
    "class"; "extends"; "public"; "private"; "protected"; "static"; "final";
    "native"; "void"; "int"; "boolean"; "if"; "else"; "while"; "for";
    "return"; "break"; "continue"; "new"; "this"; "super"; "null"; "true";
    "false"; "instanceof";
  ]

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize (src : string) : token list =
  let n = String.length src in
  let line = ref 1 and col = ref 1 in
  let i = ref 0 in
  let out = ref [] in
  let pos () = { Ast.line = !line; col = !col } in
  let advance () =
    (if !i < n then
       if src.[!i] = '\n' then begin
         incr line;
         col := 1
       end
       else incr col);
    incr i
  in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  let cur () = peek 0 in
  let err msg = raise (Lex_error (msg, pos ())) in
  let emit tk p = out := { tk; tpos = p } :: !out in
  while !i < n do
    let p = pos () in
    match cur () with
    | None -> ()
    | Some c -> (
        match c with
        | ' ' | '\t' | '\r' | '\n' -> advance ()
        | '/' when peek 1 = Some '/' ->
            while !i < n && src.[!i] <> '\n' do
              advance ()
            done
        | '/' when peek 1 = Some '*' ->
            advance ();
            advance ();
            let closed = ref false in
            while (not !closed) && !i < n do
              if src.[!i] = '*' && peek 1 = Some '/' then begin
                advance ();
                advance ();
                closed := true
              end
              else advance ()
            done;
            if not !closed then err "unterminated comment"
        | '"' ->
            advance ();
            let b = Buffer.create 16 in
            let closed = ref false in
            while (not !closed) && !i < n do
              match src.[!i] with
              | '"' ->
                  advance ();
                  closed := true
              | '\\' -> (
                  advance ();
                  match cur () with
                  | Some 'n' ->
                      Buffer.add_char b '\n';
                      advance ()
                  | Some 't' ->
                      Buffer.add_char b '\t';
                      advance ()
                  | Some 'r' ->
                      Buffer.add_char b '\r';
                      advance ()
                  | Some '"' ->
                      Buffer.add_char b '"';
                      advance ()
                  | Some '\\' ->
                      Buffer.add_char b '\\';
                      advance ()
                  | _ -> err "bad escape sequence")
              | '\n' -> err "newline in string literal"
              | ch ->
                  Buffer.add_char b ch;
                  advance ()
            done;
            if not !closed then err "unterminated string literal";
            emit (T_string (Buffer.contents b)) p
        | c when is_digit c ->
            let b = Buffer.create 8 in
            while !i < n && is_digit src.[!i] do
              Buffer.add_char b src.[!i];
              advance ()
            done;
            emit (T_int (int_of_string (Buffer.contents b))) p
        | c when is_ident_start c ->
            let b = Buffer.create 8 in
            while !i < n && is_ident_char src.[!i] do
              Buffer.add_char b src.[!i];
              advance ()
            done;
            let s = Buffer.contents b in
            if List.mem s keywords then emit (T_kw s) p else emit (T_ident s) p
        | _ ->
            let two =
              if !i + 1 < n then String.sub src !i 2 else ""
            in
            if List.mem two [ "=="; "!="; "<="; ">="; "&&"; "||" ] then begin
              advance ();
              advance ();
              emit (T_punct two) p
            end
            else if String.contains "{}()[];,.=<>+-*/%!" c then begin
              advance ();
              emit (T_punct (String.make 1 c)) p
            end
            else err (Printf.sprintf "unexpected character %C" c))
  done;
  List.rev ({ tk = T_eof; tpos = pos () } :: !out)

let token_to_string t =
  match t.tk with
  | T_int i -> string_of_int i
  | T_string s -> Printf.sprintf "%S" s
  | T_ident s -> s
  | T_kw s -> s
  | T_punct s -> s
  | T_eof -> "<eof>"
