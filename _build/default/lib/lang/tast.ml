(* Typed abstract syntax: the output of [Typecheck], input to [Codegen].
   All names are resolved — field accesses carry full field references,
   calls carry method references and dispatch kinds, locals are slots. *)

module CF = Jv_classfile

type ty = CF.Types.ty

type call_kind = C_virtual | C_direct | C_static

type tbin =
  | B_arith of CF.Instr.binop
  | B_icmp of CF.Instr.icmp
  | B_acmp of bool (* true = ==, false = != *)
  | B_concat
  | B_and (* short-circuit *)
  | B_or

type texpr = { te : tkind; tty : ty }

and tkind =
  | T_int of int
  | T_bool of bool
  | T_str of string
  | T_null
  | T_this
  | T_local of int
  | T_get_field of texpr * CF.Instr.field_ref
  | T_get_static of CF.Instr.field_ref
  | T_array_len of texpr
  | T_index of texpr * texpr
  | T_call of call_kind * texpr option * CF.Instr.method_ref * texpr list
  | T_new of CF.Instr.method_ref * texpr list (* ctor ref *)
  | T_new_array of ty * texpr (* element type, length *)
  | T_binop of tbin * texpr * texpr
  | T_not of texpr
  | T_neg of texpr
  | T_int_to_string of texpr
  | T_cast of ty * texpr
  | T_instanceof of ty * texpr

type tstmt =
  | Ts_seq of tstmt list
  | Ts_if of texpr * tstmt * tstmt option
  | Ts_while of texpr * tstmt
  | Ts_for of tstmt * texpr option * tstmt * tstmt (* init, cond, step, body *)
  | Ts_return of texpr option
  | Ts_break
  | Ts_continue
  | Ts_expr of texpr (* non-void results are popped *)
  | Ts_set_local of int * texpr
  | Ts_set_field of texpr * CF.Instr.field_ref * texpr
  | Ts_set_static of CF.Instr.field_ref * texpr
  | Ts_set_index of texpr * texpr * texpr * ty (* array, index, value, elem *)
  | Ts_nop

type tmethod = {
  tm_name : string;
  tm_sig : CF.Types.msig;
  tm_access : CF.Access.t;
  tm_body : tstmt list option; (* None = native *)
  tm_max_locals : int;
}

type tclass = {
  tc_name : string;
  tc_super : string;
  tc_fields : CF.Cls.field list;
  tc_methods : tmethod list;
}

(* Does every control path through the statements end in a return?  Used by
   the typechecker to guarantee verified code cannot fall off the end of a
   non-void method. *)
let rec returns_always (s : tstmt) : bool =
  match s with
  | Ts_return _ -> true
  | Ts_seq ss -> List.exists returns_always ss
  | Ts_if (_, a, Some b) -> returns_always a && returns_always b
  | Ts_while ({ te = T_bool true; _ }, body) ->
      (* while(true) without break never falls through *)
      not (has_break body)
  | _ -> false

and has_break (s : tstmt) : bool =
  match s with
  | Ts_break -> true
  | Ts_seq ss -> List.exists has_break ss
  | Ts_if (_, a, b) ->
      has_break a || (match b with Some b -> has_break b | None -> false)
  | Ts_for (i, _, st, _) -> has_break i || has_break st
  (* breaks inside nested loops bind to those loops *)
  | Ts_while _ -> false
  | _ -> false

let body_returns (body : tstmt list) = List.exists returns_always body
