(* Compiler driver: source text -> class files.

   [mode = Transformer] is the paper's JastAdd-extended compilation used
   only for Jvolve transformer classes (ignores access modifiers, allows
   assignment to final fields); such class files verify only under the
   verifier's [Transformer] mode, which the VM enables "in this special
   circumstance" (paper §2.3). *)

module CF = Jv_classfile

type mode = Typecheck.mode = Strict | Transformer

exception Error of string

let error_of_exn = function
  | Lexer.Lex_error (m, p) ->
      Some (Printf.sprintf "lex error: %s at %s" m (Ast.pos_to_string p))
  | Parser.Parse_error (m, p) ->
      Some (Printf.sprintf "parse error: %s at %s" m (Ast.pos_to_string p))
  | Typecheck.Type_error (m, p) ->
      Some (Printf.sprintf "type error: %s at %s" m (Ast.pos_to_string p))
  | _ -> None

(* Compile source text to class files.  [extra] supplies additional
   already-compiled classes the source may reference (used for transformer
   compilation, where old renamed classes and the new program are in
   class-file form). *)
let compile ?(mode = Strict) ?(extra = []) (src : string) : CF.Cls.t list =
  try
    let ast = Parser.parse_program src in
    let tcs = Typecheck.check_program ~mode ~extra ast in
    List.map Codegen.gen_class tcs
  with e -> (
    match error_of_exn e with Some m -> raise (Error m) | None -> raise e)

(* Compile and verify, returning a complete verified program (builtins
   included).  Raises [Error] with all verifier messages on failure. *)
let compile_program ?(mode = Strict) ?(extra = []) (src : string) :
    CF.Cls.t list =
  let classes = compile ~mode ~extra src in
  let program = CF.Cls.program_of_list (CF.Builtins.all @ extra @ classes) in
  let vmode =
    match mode with
    | Strict -> CF.Verifier.Strict
    | Transformer -> CF.Verifier.Transformer
  in
  (match CF.Verifier.verify_program ~mode:vmode program with
  | [] -> ()
  | errs ->
      raise (Error ("verification failed:\n  " ^ String.concat "\n  " errs)));
  classes
