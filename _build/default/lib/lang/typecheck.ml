(* The MiniJava typechecker: resolves names, checks types and access
   rights, and produces the typed AST.

   [mode = Transformer] implements the paper's JastAdd compiler extension
   (§2.3): transformer classes may read/write private and protected members
   of other classes and assign final fields.  Everything else is checked
   normally. *)

module CF = Jv_classfile
open Ast
open Tast

type mode = Strict | Transformer

exception Type_error of string * pos

let terr pos fmt =
  Printf.ksprintf (fun s -> raise (Type_error (s, pos))) fmt

(* --- class table ----------------------------------------------------- *)

type member_field = {
  mf_name : string;
  mf_ty : CF.Types.ty;
  mf_access : CF.Access.t;
  mf_decl : string; (* declaring class *)
}

type member_meth = {
  mm_name : string;
  mm_sig : CF.Types.msig;
  mm_access : CF.Access.t;
  mm_decl : string;
}

type class_info = {
  ci_name : string;
  ci_super : string option;
  ci_fields : member_field list; (* declared only *)
  ci_meths : member_meth list; (* declared only *)
  ci_builtin : bool;
}

type table = (string, class_info) Hashtbl.t

let class_info_of_cf ?(builtin = true) (c : CF.Cls.t) : class_info =
  {
    ci_name = c.CF.Cls.c_name;
    ci_super =
      (if String.equal c.CF.Cls.c_name CF.Types.object_class then None
       else Some c.CF.Cls.c_super);
    ci_fields =
      List.map
        (fun (f : CF.Cls.field) ->
          {
            mf_name = f.CF.Cls.fd_name;
            mf_ty = f.CF.Cls.fd_ty;
            mf_access = f.CF.Cls.fd_access;
            mf_decl = c.CF.Cls.c_name;
          })
        c.CF.Cls.c_fields;
    ci_meths =
      List.map
        (fun (m : CF.Cls.meth) ->
          {
            mm_name = m.CF.Cls.md_name;
            mm_sig = m.CF.Cls.md_sig;
            mm_access = m.CF.Cls.md_access;
            mm_decl = c.CF.Cls.c_name;
          })
        c.CF.Cls.c_methods;
    ci_builtin = builtin;
  }

let rec cf_ty (tbl : table) pos (t : sty) : CF.Types.ty =
  match t with
  | St_int -> CF.Types.TInt
  | St_bool -> CF.Types.TBool
  | St_void -> CF.Types.TVoid
  | St_class c ->
      if not (Hashtbl.mem tbl c) then terr pos "unknown class %s" c;
      CF.Types.TRef c
  | St_array t -> CF.Types.TArray (cf_ty tbl pos t)

let access_of_mods (m : modifiers) =
  CF.Access.make ~visibility:m.m_vis ~static:m.m_static ~final:m.m_final
    ~native:m.m_native ()

(* First pass: collect all class signatures (fields and method headers). *)
let build_table ?(extra = []) (prog : program) : table =
  let tbl : table = Hashtbl.create 64 in
  List.iter
    (fun c -> Hashtbl.replace tbl c.CF.Cls.c_name (class_info_of_cf c))
    CF.Builtins.all;
  (* pre-compiled classes supplied alongside the source (the new program
     and old-class stubs during transformer compilation) are ordinary
     classes, not builtins *)
  List.iter
    (fun c ->
      Hashtbl.replace tbl c.CF.Cls.c_name (class_info_of_cf ~builtin:false c))
    extra;
  (* install names first so types can refer to any program class *)
  List.iter
    (fun (c : class_decl) ->
      if Hashtbl.mem tbl c.cd_name then
        terr c.cd_pos "duplicate class %s" c.cd_name;
      Hashtbl.replace tbl c.cd_name
        {
          ci_name = c.cd_name;
          ci_super = None;
          ci_fields = [];
          ci_meths = [];
          ci_builtin = false;
        })
    prog;
  List.iter
    (fun (c : class_decl) ->
      let super =
        match c.cd_super with
        | None -> CF.Types.object_class
        | Some s ->
            (match Hashtbl.find_opt tbl s with
            | None -> terr c.cd_pos "unknown superclass %s of %s" s c.cd_name
            | Some si ->
                if si.ci_builtin && not (String.equal s CF.Types.object_class)
                then
                  terr c.cd_pos "cannot extend builtin class %s" s);
            s
      in
      let fields =
        List.map
          (fun (f : field_decl) ->
            {
              mf_name = f.f_name;
              mf_ty = cf_ty tbl f.f_pos f.f_ty;
              mf_access = access_of_mods f.f_mods;
              mf_decl = c.cd_name;
            })
          c.cd_fields
      in
      let meths =
        List.map
          (fun (m : method_decl) ->
            {
              mm_name = m.md_name;
              mm_sig =
                {
                  CF.Types.params =
                    List.map (fun (t, _) -> cf_ty tbl m.md_pos t) m.md_params;
                  ret = cf_ty tbl m.md_pos m.md_ret;
                };
              mm_access = access_of_mods m.md_mods;
              mm_decl = c.cd_name;
            })
          c.cd_methods
      in
      (* classes without a declared constructor get the synthesized public
         no-argument one (see [check_class]) *)
      let meths =
        if List.exists (fun m -> m.mm_name = CF.Cls.ctor_name) meths then
          meths
        else
          {
            mm_name = CF.Cls.ctor_name;
            mm_sig = { CF.Types.params = []; ret = CF.Types.TVoid };
            mm_access = CF.Access.make ();
            mm_decl = c.cd_name;
          }
          :: meths
      in
      Hashtbl.replace tbl c.cd_name
        {
          ci_name = c.cd_name;
          ci_super = Some super;
          ci_fields = fields;
          ci_meths = meths;
          ci_builtin = false;
        })
    prog;
  (* cycle check *)
  List.iter
    (fun (c : class_decl) ->
      let rec walk seen name =
        if List.mem name seen then
          terr c.cd_pos "cyclic inheritance involving %s" c.cd_name
        else
          match (Hashtbl.find tbl name).ci_super with
          | None -> ()
          | Some s -> walk (name :: seen) s
      in
      walk [] c.cd_name)
    prog;
  tbl

(* --- subtyping -------------------------------------------------------- *)

let rec is_subclass tbl ~sub ~super =
  String.equal sub super
  ||
  match Hashtbl.find_opt tbl sub with
  | None -> false
  | Some ci -> (
      match ci.ci_super with
      | None -> false
      | Some s -> is_subclass tbl ~sub:s ~super)

(* [xty] extends class-file types with the type of the null literal. *)
type xty = X_null | X of CF.Types.ty

let xty_to_string = function
  | X_null -> "null"
  | X t -> CF.Types.to_string t

let assignable tbl ~(from : xty) ~(into : CF.Types.ty) =
  match (from, into) with
  | X_null, (CF.Types.TRef _ | CF.Types.TArray _) -> true
  | X CF.Types.TInt, CF.Types.TInt -> true
  | X CF.Types.TBool, CF.Types.TBool -> true
  | X (CF.Types.TRef a), CF.Types.TRef b -> is_subclass tbl ~sub:a ~super:b
  | X (CF.Types.TArray a), CF.Types.TArray b -> CF.Types.equal_ty a b
  | X (CF.Types.TArray _), CF.Types.TRef o ->
      String.equal o CF.Types.object_class
  | _ -> false

(* --- member lookup ---------------------------------------------------- *)

let rec ancestry tbl name acc =
  match Hashtbl.find_opt tbl name with
  | None -> List.rev acc
  | Some ci -> (
      let acc = ci :: acc in
      match ci.ci_super with
      | None -> List.rev acc
      | Some s -> ancestry tbl s acc)

let lookup_field tbl cname fname : member_field option =
  ancestry tbl cname []
  |> List.find_map (fun ci ->
         List.find_opt (fun f -> String.equal f.mf_name fname) ci.ci_fields)

(* all methods named [m] visible from [cname], nearest declarations first,
   overridden signatures deduplicated *)
let lookup_methods tbl cname mname : member_meth list =
  let seen = ref [] in
  ancestry tbl cname []
  |> List.concat_map (fun ci ->
         List.filter
           (fun m ->
             String.equal m.mm_name mname
             &&
             let key = CF.Types.msig_descriptor m.mm_sig in
             if List.mem key !seen then false
             else begin
               seen := key :: !seen;
               true
             end)
           ci.ci_meths)

(* --- checking context -------------------------------------------------- *)

type ctx = {
  tbl : table;
  mode : mode;
  cls : string; (* current class *)
  cur_static : bool;
  cur_ctor : bool;
  ret : CF.Types.ty;
  mutable scopes : (string * (int * CF.Types.ty)) list list;
  mutable next_slot : int;
  mutable max_slot : int;
  mutable loop_depth : int;
}

let push_scope ctx = ctx.scopes <- [] :: ctx.scopes

let pop_scope ctx =
  match ctx.scopes with [] -> assert false | _ :: rest -> ctx.scopes <- rest

let find_local ctx name =
  let rec go = function
    | [] -> None
    | scope :: rest -> (
        match List.assoc_opt name scope with
        | Some v -> Some v
        | None -> go rest)
  in
  go ctx.scopes

let declare_local ctx pos name ty =
  if find_local ctx name <> None then
    terr pos "duplicate local variable %s" name;
  let slot = ctx.next_slot in
  ctx.next_slot <- slot + 1;
  if ctx.next_slot > ctx.max_slot then ctx.max_slot <- ctx.next_slot;
  (match ctx.scopes with
  | scope :: rest -> ctx.scopes <- ((name, (slot, ty)) :: scope) :: rest
  | [] -> assert false);
  slot

let check_member_access ctx pos ~(vis : CF.Access.visibility) ~decl ~what =
  match ctx.mode with
  | Transformer -> ()
  | Strict ->
      let same_class = String.equal ctx.cls decl in
      let same_hierarchy = is_subclass ctx.tbl ~sub:ctx.cls ~super:decl in
      if not (CF.Access.accessible vis ~same_class ~same_hierarchy) then
        terr pos "%s is not accessible from %s (declared %s in %s)" what
          ctx.cls
          (CF.Access.visibility_to_string vis)
          decl

let xty_of (e : texpr) : xty = match e.te with T_null -> X_null | _ -> X e.tty

(* --- overload resolution ------------------------------------------------ *)

let resolve_overload ctx pos ~recv_class ~mname ~(args : texpr list) :
    member_meth =
  let cands = lookup_methods ctx.tbl recv_class mname in
  if cands = [] then
    terr pos "no method %s in class %s" mname recv_class;
  let applicable =
    List.filter
      (fun m ->
        List.length m.mm_sig.CF.Types.params = List.length args
        && List.for_all2
             (fun p a -> assignable ctx.tbl ~from:(xty_of a) ~into:p)
             m.mm_sig.CF.Types.params args)
      cands
  in
  match applicable with
  | [] ->
      terr pos "no applicable overload of %s.%s for (%s)" recv_class mname
        (String.concat ", "
           (List.map (fun a -> xty_to_string (xty_of a)) args))
  | [ m ] -> m
  | ms -> (
      (* most specific: every parameter assignable into all rivals' *)
      let more_specific a b =
        List.for_all2
          (fun pa pb -> assignable ctx.tbl ~from:(X pa) ~into:pb)
          a.mm_sig.CF.Types.params b.mm_sig.CF.Types.params
      in
      match
        List.filter
          (fun m -> List.for_all (fun o -> more_specific m o) ms)
          ms
      with
      | [ m ] -> m
      | _ -> terr pos "ambiguous call to %s.%s" recv_class mname)

(* Is [name] a class name (and not shadowed by a local or field)? *)
let is_class_ref ctx name =
  find_local ctx name = None
  && lookup_field ctx.tbl ctx.cls name = None
  && Hashtbl.mem ctx.tbl name

let field_ref (mf : member_field) : CF.Instr.field_ref =
  {
    CF.Instr.f_class = mf.mf_decl;
    f_name = mf.mf_name;
    f_ty = mf.mf_ty;
  }

let method_ref ~cls (mm : member_meth) : CF.Instr.method_ref =
  (* resolve against the receiver's static class; the verifier and JIT both
     walk the hierarchy from there *)
  { CF.Instr.m_class = cls; m_name = mm.mm_name; m_sig = mm.mm_sig }

(* --- expressions -------------------------------------------------------- *)

let rec check_expr ctx (e : expr) : texpr =
  let pos = e.epos in
  match e.e with
  | E_int i -> { te = T_int i; tty = CF.Types.TInt }
  | E_bool b -> { te = T_bool b; tty = CF.Types.TBool }
  | E_str s -> { te = T_str s; tty = CF.Types.t_string }
  | E_null -> { te = T_null; tty = CF.Types.t_object }
  | E_this ->
      if ctx.cur_static then terr pos "this in static context";
      { te = T_this; tty = CF.Types.TRef ctx.cls }
  | E_name name -> (
      match find_local ctx name with
      | Some (slot, ty) -> { te = T_local slot; tty = ty }
      | None -> (
          match lookup_field ctx.tbl ctx.cls name with
          | Some mf -> implicit_field_access ctx pos mf
          | None ->
              if Hashtbl.mem ctx.tbl name then
                terr pos "class name %s used as a value" name
              else terr pos "unknown identifier %s" name))
  | E_field (recv, fname) -> (
      match recv.e with
      | E_name cname when is_class_ref ctx cname ->
          (* static field access Class.f *)
          static_field_access ctx pos cname fname
      | _ -> (
          let r = check_expr ctx recv in
          match r.tty with
          | CF.Types.TArray _ when String.equal fname "length" ->
              { te = T_array_len r; tty = CF.Types.TInt }
          | CF.Types.TRef cname -> (
              match lookup_field ctx.tbl cname fname with
              | None -> terr pos "class %s has no field %s" cname fname
              | Some mf ->
                  if mf.mf_access.CF.Access.is_static then
                    terr pos "static field %s accessed via instance" fname;
                  check_member_access ctx pos
                    ~vis:mf.mf_access.CF.Access.visibility ~decl:mf.mf_decl
                    ~what:("field " ^ fname);
                  { te = T_get_field (r, field_ref mf); tty = mf.mf_ty })
          | t ->
              terr pos "field access on non-object type %s"
                (CF.Types.to_string t)))
  | E_call (recv, mname, args) -> check_call ctx pos recv mname args
  | E_new (cname, args) -> (
      match Hashtbl.find_opt ctx.tbl cname with
      | None -> terr pos "unknown class %s" cname
      | Some ci when ci.ci_builtin ->
          terr pos "cannot instantiate builtin class %s" cname
      | Some _ ->
          let targs = List.map (check_expr ctx) args in
          let ctor =
            resolve_overload ctx pos ~recv_class:cname
              ~mname:CF.Cls.ctor_name ~args:targs
          in
          if not (String.equal ctor.mm_decl cname) then
            terr pos "class %s has no constructor of that shape" cname;
          check_member_access ctx pos ~vis:ctor.mm_access.CF.Access.visibility
            ~decl:ctor.mm_decl
            ~what:("constructor of " ^ cname);
          {
            te = T_new (method_ref ~cls:cname ctor, targs);
            tty = CF.Types.TRef cname;
          })
  | E_new_array (elem_sty, len) ->
      let elem = cf_ty ctx.tbl pos elem_sty in
      if CF.Types.equal_ty elem CF.Types.TVoid then
        terr pos "array of void";
      let tlen = check_expr ctx len in
      expect ctx pos tlen CF.Types.TInt "array length";
      { te = T_new_array (elem, tlen); tty = CF.Types.TArray elem }
  | E_index (arr, idx) -> (
      let tarr = check_expr ctx arr in
      let tidx = check_expr ctx idx in
      expect ctx pos tidx CF.Types.TInt "array index";
      match tarr.tty with
      | CF.Types.TArray elem -> { te = T_index (tarr, tidx); tty = elem }
      | t -> terr pos "indexing non-array type %s" (CF.Types.to_string t))
  | E_assign _ -> terr pos "assignment used as a value"
  | E_binop (op, a, b) -> check_binop ctx pos op a b
  | E_unop ("!", a) ->
      let ta = check_expr ctx a in
      expect ctx pos ta CF.Types.TBool "operand of !";
      { te = T_not ta; tty = CF.Types.TBool }
  | E_unop ("-", a) ->
      let ta = check_expr ctx a in
      expect ctx pos ta CF.Types.TInt "operand of unary -";
      { te = T_neg ta; tty = CF.Types.TInt }
  | E_unop (op, _) -> terr pos "unknown unary operator %s" op
  | E_cast (cname, a) ->
      if not (Hashtbl.mem ctx.tbl cname) then
        terr pos "unknown class %s in cast" cname;
      let ta = check_expr ctx a in
      (match ta.tty with
      | CF.Types.TRef _ | CF.Types.TArray _ -> ()
      | t -> terr pos "cannot cast non-reference type %s" (CF.Types.to_string t));
      let ty = CF.Types.TRef cname in
      { te = T_cast (ty, ta); tty = ty }
  | E_instanceof (a, cname) ->
      if not (Hashtbl.mem ctx.tbl cname) then
        terr pos "unknown class %s in instanceof" cname;
      let ta = check_expr ctx a in
      (match ta.tty with
      | CF.Types.TRef _ | CF.Types.TArray _ -> ()
      | t ->
          terr pos "instanceof on non-reference type %s"
            (CF.Types.to_string t));
      { te = T_instanceof (CF.Types.TRef cname, ta); tty = CF.Types.TBool }

and expect ctx pos (e : texpr) ty what =
  if not (assignable ctx.tbl ~from:(xty_of e) ~into:ty) then
    terr pos "%s has type %s, expected %s" what
      (xty_to_string (xty_of e))
      (CF.Types.to_string ty)

and implicit_field_access ctx pos (mf : member_field) : texpr =
  check_member_access ctx pos ~vis:mf.mf_access.CF.Access.visibility
    ~decl:mf.mf_decl
    ~what:("field " ^ mf.mf_name);
  if mf.mf_access.CF.Access.is_static then
    { te = T_get_static (field_ref mf); tty = mf.mf_ty }
  else begin
    if ctx.cur_static then
      terr pos "instance field %s in static context" mf.mf_name;
    {
      te =
        T_get_field ({ te = T_this; tty = CF.Types.TRef ctx.cls }, field_ref mf);
      tty = mf.mf_ty;
    }
  end

and static_field_access ctx pos cname fname : texpr =
  match lookup_field ctx.tbl cname fname with
  | None -> terr pos "class %s has no field %s" cname fname
  | Some mf ->
      if not mf.mf_access.CF.Access.is_static then
        terr pos "instance field %s accessed via class name" fname;
      check_member_access ctx pos ~vis:mf.mf_access.CF.Access.visibility
        ~decl:mf.mf_decl
        ~what:("field " ^ fname);
      { te = T_get_static (field_ref mf); tty = mf.mf_ty }

and check_call ctx pos recv mname args : texpr =
  let targs = List.map (check_expr ctx) args in
  let build ~kind ~recv_texpr ~recv_class (mm : member_meth) =
    check_member_access ctx pos ~vis:mm.mm_access.CF.Access.visibility
      ~decl:mm.mm_decl
      ~what:(Printf.sprintf "method %s" mname);
    {
      te = T_call (kind, recv_texpr, method_ref ~cls:recv_class mm, targs);
      tty = mm.mm_sig.CF.Types.ret;
    }
  in
  match recv with
  | Some { e = E_name cname; _ } when is_class_ref ctx cname ->
      (* static call Class.m(...) *)
      let mm = resolve_overload ctx pos ~recv_class:cname ~mname ~args:targs in
      if not mm.mm_access.CF.Access.is_static then
        terr pos "instance method %s called via class name %s" mname cname;
      build ~kind:C_static ~recv_texpr:None ~recv_class:cname mm
  | Some r -> (
      let tr = check_expr ctx r in
      match tr.tty with
      | CF.Types.TRef cname ->
          let mm =
            resolve_overload ctx pos ~recv_class:cname ~mname ~args:targs
          in
          if mm.mm_access.CF.Access.is_static then
            terr pos "static method %s called via instance" mname;
          let kind =
            if mm.mm_access.CF.Access.visibility = CF.Access.Private then
              C_direct
            else C_virtual
          in
          build ~kind ~recv_texpr:(Some tr) ~recv_class:cname mm
      | t ->
          terr pos "method call on non-object type %s" (CF.Types.to_string t))
  | None ->
      (* bare call: a method of the current class (or an ancestor) *)
      let mm =
        resolve_overload ctx pos ~recv_class:ctx.cls ~mname ~args:targs
      in
      if mm.mm_access.CF.Access.is_static then
        build ~kind:C_static ~recv_texpr:None ~recv_class:ctx.cls mm
      else begin
        if ctx.cur_static then
          terr pos "instance method %s called in static context" mname;
        let this = { te = T_this; tty = CF.Types.TRef ctx.cls } in
        let kind =
          if mm.mm_access.CF.Access.visibility = CF.Access.Private then
            C_direct
          else C_virtual
        in
        build ~kind ~recv_texpr:(Some this) ~recv_class:ctx.cls mm
      end

and check_binop ctx pos op a b : texpr =
  let ta = check_expr ctx a in
  let tb = check_expr ctx b in
  let is_string (t : texpr) = CF.Types.equal_ty t.tty CF.Types.t_string in
  let as_string (t : texpr) =
    if is_string t then t
    else
      match xty_of t with
      | X CF.Types.TInt -> { te = T_int_to_string t; tty = CF.Types.t_string }
      | X_null -> terr pos "cannot concatenate null (use a literal)"
      | _ ->
          terr pos "cannot concatenate %s with a String"
            (xty_to_string (xty_of t))
  in
  let int_int mk =
    expect ctx pos ta CF.Types.TInt "left operand";
    expect ctx pos tb CF.Types.TInt "right operand";
    mk
  in
  match op with
  | "+" when is_string ta || is_string tb ->
      {
        te = T_binop (B_concat, as_string ta, as_string tb);
        tty = CF.Types.t_string;
      }
  | "+" -> { te = int_int (T_binop (B_arith CF.Instr.Add, ta, tb)); tty = TInt }
  | "-" -> { te = int_int (T_binop (B_arith CF.Instr.Sub, ta, tb)); tty = TInt }
  | "*" -> { te = int_int (T_binop (B_arith CF.Instr.Mul, ta, tb)); tty = TInt }
  | "/" -> { te = int_int (T_binop (B_arith CF.Instr.Div, ta, tb)); tty = TInt }
  | "%" -> { te = int_int (T_binop (B_arith CF.Instr.Rem, ta, tb)); tty = TInt }
  | "<" | "<=" | ">" | ">=" ->
      let c =
        match op with
        | "<" -> CF.Instr.Lt
        | "<=" -> CF.Instr.Le
        | ">" -> CF.Instr.Gt
        | _ -> CF.Instr.Ge
      in
      { te = int_int (T_binop (B_icmp c, ta, tb)); tty = CF.Types.TBool }
  | "==" | "!=" -> (
      let eq = String.equal op "==" in
      match (xty_of ta, xty_of tb) with
      | X CF.Types.TInt, X CF.Types.TInt ->
          {
            te =
              T_binop
                (B_icmp (if eq then CF.Instr.Eq else CF.Instr.Ne), ta, tb);
            tty = CF.Types.TBool;
          }
      | (X (CF.Types.TRef _ | CF.Types.TArray _) | X_null), _
        when (match xty_of tb with
             | X (CF.Types.TRef _ | CF.Types.TArray _) | X_null -> true
             | _ -> false) ->
          { te = T_binop (B_acmp eq, ta, tb); tty = CF.Types.TBool }
      | _ ->
          terr pos "cannot compare %s with %s (boolean comparison: use logic)"
            (xty_to_string (xty_of ta))
            (xty_to_string (xty_of tb)))
  | "&&" ->
      expect ctx pos ta CF.Types.TBool "left operand of &&";
      expect ctx pos tb CF.Types.TBool "right operand of &&";
      { te = T_binop (B_and, ta, tb); tty = CF.Types.TBool }
  | "||" ->
      expect ctx pos ta CF.Types.TBool "left operand of ||";
      expect ctx pos tb CF.Types.TBool "right operand of ||";
      { te = T_binop (B_or, ta, tb); tty = CF.Types.TBool }
  | _ -> terr pos "unknown operator %s" op

(* --- assignment --------------------------------------------------------- *)

let check_final_assign ctx pos (mf : member_field) =
  if mf.mf_access.CF.Access.is_final && ctx.mode = Strict then begin
    let ok =
      String.equal ctx.cls mf.mf_decl
      &&
      if mf.mf_access.CF.Access.is_static then false
        (* static finals are assigned via their initializer only *)
      else ctx.cur_ctor
    in
    if not ok then terr pos "assignment to final field %s" mf.mf_name
  end

let check_assign ctx pos (lhs : expr) (rhs : expr) : tstmt =
  let trhs = check_expr ctx rhs in
  match lhs.e with
  | E_name name -> (
      match find_local ctx name with
      | Some (slot, ty) ->
          if not (assignable ctx.tbl ~from:(xty_of trhs) ~into:ty) then
            terr pos "cannot assign %s to %s (%s)"
              (xty_to_string (xty_of trhs))
              name (CF.Types.to_string ty);
          Ts_set_local (slot, trhs)
      | None -> (
          match lookup_field ctx.tbl ctx.cls name with
          | Some mf ->
              check_member_access ctx pos
                ~vis:mf.mf_access.CF.Access.visibility ~decl:mf.mf_decl
                ~what:("field " ^ name);
              check_final_assign ctx pos mf;
              if not (assignable ctx.tbl ~from:(xty_of trhs) ~into:mf.mf_ty)
              then
                terr pos "cannot assign %s to field %s (%s)"
                  (xty_to_string (xty_of trhs))
                  name
                  (CF.Types.to_string mf.mf_ty);
              if mf.mf_access.CF.Access.is_static then
                Ts_set_static (field_ref mf, trhs)
              else begin
                if ctx.cur_static then
                  terr pos "instance field %s in static context" name;
                Ts_set_field
                  ( { te = T_this; tty = CF.Types.TRef ctx.cls },
                    field_ref mf,
                    trhs )
              end
          | None -> terr pos "unknown identifier %s" name))
  | E_field (recv, fname) -> (
      match recv.e with
      | E_name cname when is_class_ref ctx cname -> (
          match lookup_field ctx.tbl cname fname with
          | None -> terr pos "class %s has no field %s" cname fname
          | Some mf ->
              if not mf.mf_access.CF.Access.is_static then
                terr pos "instance field %s assigned via class name" fname;
              check_member_access ctx pos
                ~vis:mf.mf_access.CF.Access.visibility ~decl:mf.mf_decl
                ~what:("field " ^ fname);
              check_final_assign ctx pos mf;
              if not (assignable ctx.tbl ~from:(xty_of trhs) ~into:mf.mf_ty)
              then terr pos "type mismatch assigning %s.%s" cname fname;
              Ts_set_static (field_ref mf, trhs))
      | _ -> (
          let tr = check_expr ctx recv in
          match tr.tty with
          | CF.Types.TRef cname -> (
              match lookup_field ctx.tbl cname fname with
              | None -> terr pos "class %s has no field %s" cname fname
              | Some mf ->
                  if mf.mf_access.CF.Access.is_static then
                    terr pos "static field %s assigned via instance" fname;
                  check_member_access ctx pos
                    ~vis:mf.mf_access.CF.Access.visibility ~decl:mf.mf_decl
                    ~what:("field " ^ fname);
                  check_final_assign ctx pos mf;
                  if
                    not
                      (assignable ctx.tbl ~from:(xty_of trhs) ~into:mf.mf_ty)
                  then terr pos "type mismatch assigning %s.%s" cname fname;
                  Ts_set_field (tr, field_ref mf, trhs))
          | t ->
              terr pos "field assignment on non-object type %s"
                (CF.Types.to_string t)))
  | E_index (arr, idx) -> (
      let tarr = check_expr ctx arr in
      let tidx = check_expr ctx idx in
      expect ctx pos tidx CF.Types.TInt "array index";
      match tarr.tty with
      | CF.Types.TArray elem ->
          if not (assignable ctx.tbl ~from:(xty_of trhs) ~into:elem) then
            terr pos "cannot store %s into %s[]"
              (xty_to_string (xty_of trhs))
              (CF.Types.to_string elem);
          Ts_set_index (tarr, tidx, trhs, elem)
      | t -> terr pos "indexing non-array type %s" (CF.Types.to_string t))
  | _ -> terr pos "invalid assignment target"

(* --- statements --------------------------------------------------------- *)

let rec check_stmt ctx (s : stmt) : tstmt =
  match s with
  | S_block ss ->
      push_scope ctx;
      let out = List.map (check_stmt ctx) ss in
      pop_scope ctx;
      Ts_seq out
  | S_if (c, a, b) ->
      let tc = check_expr ctx c in
      expect ctx (pos_of c) tc CF.Types.TBool "if condition";
      Ts_if (tc, check_stmt ctx a, Option.map (check_stmt ctx) b)
  | S_while (c, body) ->
      let tc = check_expr ctx c in
      expect ctx (pos_of c) tc CF.Types.TBool "while condition";
      ctx.loop_depth <- ctx.loop_depth + 1;
      let tb = check_stmt ctx body in
      ctx.loop_depth <- ctx.loop_depth - 1;
      Ts_while (tc, tb)
  | S_for (init, cond, step, body) ->
      push_scope ctx;
      let tinit =
        match init with Some s -> check_stmt ctx s | None -> Ts_nop
      in
      let tcond =
        Option.map
          (fun c ->
            let tc = check_expr ctx c in
            expect ctx (pos_of c) tc CF.Types.TBool "for condition";
            tc)
          cond
      in
      let tstep =
        match step with
        | Some ({ e = E_assign (l, r); epos } as _e) ->
            check_assign ctx epos l r
        | Some e ->
            let te = check_expr ctx e in
            Ts_expr te
        | None -> Ts_nop
      in
      ctx.loop_depth <- ctx.loop_depth + 1;
      let tbody = check_stmt ctx body in
      ctx.loop_depth <- ctx.loop_depth - 1;
      pop_scope ctx;
      Ts_for (tinit, tcond, tstep, tbody)
  | S_return (e, pos) -> (
      match (e, ctx.ret) with
      | None, CF.Types.TVoid -> Ts_return None
      | None, t ->
          terr pos "missing return value (expected %s)" (CF.Types.to_string t)
      | Some _, CF.Types.TVoid -> terr pos "void method returns a value"
      | Some e, t ->
          let te = check_expr ctx e in
          expect ctx pos te t "return value";
          Ts_return (Some te))
  | S_break pos ->
      if ctx.loop_depth = 0 then terr pos "break outside loop";
      Ts_break
  | S_continue pos ->
      if ctx.loop_depth = 0 then terr pos "continue outside loop";
      Ts_continue
  | S_var (sty, name, init, pos) ->
      let ty = cf_ty ctx.tbl pos sty in
      if CF.Types.equal_ty ty CF.Types.TVoid then
        terr pos "variable of type void";
      let tinit = Option.map (check_expr ctx) init in
      (match tinit with
      | Some te ->
          if not (assignable ctx.tbl ~from:(xty_of te) ~into:ty) then
            terr pos "cannot initialize %s (%s) with %s" name
              (CF.Types.to_string ty)
              (xty_to_string (xty_of te))
      | None -> ());
      let slot = declare_local ctx pos name ty in
      (match tinit with
      | Some te -> Ts_set_local (slot, te)
      | None -> Ts_nop)
  | S_expr { e = E_assign (l, r); epos } -> check_assign ctx epos l r
  | S_expr e ->
      let te = check_expr ctx e in
      (match te.te with
      | T_call _ | T_new _ -> ()
      | _ -> terr (pos_of e) "expression statement has no effect");
      Ts_expr te
  | S_super (_, pos) ->
      terr pos "super(...) is only allowed as the first statement of a \
                constructor"

and pos_of (e : expr) = e.epos

(* --- classes ------------------------------------------------------------ *)

let field_to_cf tbl (c : class_decl) (f : field_decl) : CF.Cls.field =
  {
    CF.Cls.fd_name = f.f_name;
    fd_ty = cf_ty tbl f.f_pos f.f_ty;
    fd_access = access_of_mods f.f_mods;
  }
  [@@warning "-27"]

let make_ctx tbl mode cls ~static ~ctor ~ret ~params =
  let ctx =
    {
      tbl;
      mode;
      cls;
      cur_static = static;
      cur_ctor = ctor;
      ret;
      scopes = [ [] ];
      next_slot = (if static then 0 else 1);
      max_slot = (if static then 0 else 1);
      loop_depth = 0;
    }
  in
  List.iter
    (fun (ty, name) -> ignore (declare_local ctx no_pos name ty))
    params;
  ctx

(* Field initializer statements for instance fields, used in ctors. *)
let instance_field_inits tbl mode (c : class_decl) : tstmt list =
  List.filter_map
    (fun (f : field_decl) ->
      if f.f_mods.m_static then None
      else
        Option.map
          (fun init ->
            let ctx =
              make_ctx tbl mode c.cd_name ~static:false ~ctor:true
                ~ret:CF.Types.TVoid ~params:[]
            in
            let te = check_expr ctx init in
            let ty = cf_ty tbl f.f_pos f.f_ty in
            if not (assignable tbl ~from:(xty_of te) ~into:ty) then
              terr f.f_pos "bad initializer for field %s" f.f_name;
            Tast.Ts_set_field
              ( { te = T_this; tty = CF.Types.TRef c.cd_name },
                {
                  CF.Instr.f_class = c.cd_name;
                  f_name = f.f_name;
                  f_ty = ty;
                },
                te ))
          f.f_init)
    c.cd_fields

let static_field_inits tbl mode (c : class_decl) : tstmt list =
  List.filter_map
    (fun (f : field_decl) ->
      if not f.f_mods.m_static then None
      else
        Option.map
          (fun init ->
            let ctx =
              make_ctx tbl Transformer c.cd_name ~static:true ~ctor:false
                ~ret:CF.Types.TVoid ~params:[]
              (* Transformer mode: <clinit> may assign final statics *)
            in
            ignore mode;
            let te = check_expr ctx init in
            let ty = cf_ty tbl f.f_pos f.f_ty in
            if not (assignable tbl ~from:(xty_of te) ~into:ty) then
              terr f.f_pos "bad initializer for static field %s" f.f_name;
            Tast.Ts_set_static
              ( { CF.Instr.f_class = c.cd_name; f_name = f.f_name; f_ty = ty },
                te ))
          f.f_init)
    c.cd_fields

(* Pick the implicit/explicit super-constructor call for a ctor body. *)
let super_call ctx (c : class_decl) (body : stmt list) :
    tstmt option * stmt list =
  let super_name =
    match c.cd_super with None -> CF.Types.object_class | Some s -> s
  in
  let make_super targs (mm : member_meth) =
    Tast.Ts_expr
      {
        te =
          T_call
            ( C_direct,
              Some { te = T_this; tty = CF.Types.TRef c.cd_name },
              method_ref ~cls:super_name mm,
              targs );
        tty = CF.Types.TVoid;
      }
  in
  match body with
  | S_super (args, pos) :: rest ->
      let targs = List.map (check_expr ctx) args in
      let mm =
        resolve_overload ctx pos ~recv_class:super_name
          ~mname:CF.Cls.ctor_name ~args:targs
      in
      (Some (make_super targs mm), rest)
  | _ ->
      (* implicit super(): required only if the superclass declares ctors *)
      let super_ctors = lookup_methods ctx.tbl super_name CF.Cls.ctor_name in
      if super_ctors = [] then (None, body)
      else begin
        match
          List.find_opt
            (fun m -> m.mm_sig.CF.Types.params = [])
            super_ctors
        with
        | Some mm -> (Some (make_super [] mm), body)
        | None ->
            terr c.cd_pos
              "constructor of %s must call super(...): superclass %s has no \
               no-argument constructor"
              c.cd_name super_name
      end

let check_method tbl mode (c : class_decl) (m : method_decl) : tmethod =
  let ret = cf_ty tbl m.md_pos m.md_ret in
  let params =
    List.map (fun (t, n) -> (cf_ty tbl m.md_pos t, n)) m.md_params
  in
  let msig = { CF.Types.params = List.map fst params; ret } in
  let access = access_of_mods m.md_mods in
  match m.md_body with
  | None ->
      {
        tm_name = m.md_name;
        tm_sig = msig;
        tm_access = access;
        tm_body = None;
        tm_max_locals =
          List.length params + if m.md_mods.m_static then 0 else 1;
      }
  | Some body ->
      let ctx =
        make_ctx tbl mode c.cd_name ~static:m.md_mods.m_static
          ~ctor:m.md_is_ctor ~ret ~params
      in
      let prologue, body =
        if m.md_is_ctor then begin
          let sup, rest = super_call ctx c body in
          let inits = instance_field_inits tbl mode c in
          ((match sup with Some s -> s :: inits | None -> inits), rest)
        end
        else ([], body)
      in
      let tbody = prologue @ List.map (check_stmt ctx) body in
      if
        (not (CF.Types.equal_ty ret CF.Types.TVoid))
        && not (Tast.body_returns tbody)
      then
        terr m.md_pos "method %s.%s: not all control paths return a value"
          c.cd_name m.md_name;
      {
        tm_name = m.md_name;
        tm_sig = msig;
        tm_access = access;
        tm_body = Some tbody;
        tm_max_locals = ctx.max_slot;
      }

let check_class tbl mode (c : class_decl) : tclass =
  (* duplicate member checks *)
  let seen_f = Hashtbl.create 8 in
  List.iter
    (fun (f : field_decl) ->
      if Hashtbl.mem seen_f f.f_name then
        terr f.f_pos "duplicate field %s in %s" f.f_name c.cd_name;
      Hashtbl.add seen_f f.f_name ())
    c.cd_fields;
  let seen_m = Hashtbl.create 8 in
  List.iter
    (fun (m : method_decl) ->
      let key =
        m.md_name
        ^ String.concat ","
            (List.map (fun (t, _) -> sty_to_string t) m.md_params)
      in
      if Hashtbl.mem seen_m key then
        terr m.md_pos "duplicate method %s in %s" m.md_name c.cd_name;
      Hashtbl.add seen_m key ())
    c.cd_methods;
  let methods = List.map (check_method tbl mode c) c.cd_methods in
  (* synthesize a default constructor if none is declared *)
  let methods =
    if List.exists (fun m -> m.tm_name = CF.Cls.ctor_name) methods then
      methods
    else begin
      let ctx =
        make_ctx tbl mode c.cd_name ~static:false ~ctor:true
          ~ret:CF.Types.TVoid ~params:[]
      in
      let sup, _ = super_call ctx c [] in
      let inits = instance_field_inits tbl mode c in
      let body = (match sup with Some s -> [ s ] | None -> []) @ inits in
      {
        tm_name = CF.Cls.ctor_name;
        tm_sig = { CF.Types.params = []; ret = CF.Types.TVoid };
        tm_access = CF.Access.make ();
        tm_body = Some body;
        tm_max_locals = 1;
      }
      :: methods
    end
  in
  (* synthesize <clinit> from static field initializers *)
  let clinit_body = static_field_inits tbl mode c in
  let methods =
    if clinit_body = [] then methods
    else
      methods
      @ [
          {
            tm_name = CF.Cls.clinit_name;
            tm_sig = { CF.Types.params = []; ret = CF.Types.TVoid };
            tm_access = CF.Access.make ~static:true ();
            tm_body = Some clinit_body;
            tm_max_locals = 0;
          };
        ]
  in
  {
    tc_name = c.cd_name;
    tc_super =
      (match c.cd_super with None -> CF.Types.object_class | Some s -> s);
    tc_fields = List.map (field_to_cf tbl c) c.cd_fields;
    tc_methods = methods;
  }

(* Check a whole program against builtins plus [extra] pre-compiled class
   files (used when compiling transformer classes against a program that is
   already in class-file form). *)
let check_program ?(mode = Strict) ?(extra = []) (prog : program) :
    tclass list =
  let tbl = build_table ~extra prog in
  List.map (check_class tbl mode) prog
