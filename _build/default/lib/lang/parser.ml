(* Recursive-descent parser for MiniJava. *)

open Ast
open Lexer

exception Parse_error of string * pos

type st = { toks : token array; mutable k : int }

let perr st msg =
  let t = st.toks.(st.k) in
  raise
    (Parse_error
       (Printf.sprintf "%s (found %S)" msg (token_to_string t), t.tpos))

let cur st = st.toks.(st.k)
let peek st n = st.toks.(min (st.k + n) (Array.length st.toks - 1))
let advance st = if st.k < Array.length st.toks - 1 then st.k <- st.k + 1

let is_punct st s =
  match (cur st).tk with T_punct p -> String.equal p s | _ -> false

let is_kw st s = match (cur st).tk with T_kw p -> String.equal p s | _ -> false

let eat_punct st s =
  if is_punct st s then advance st else perr st (Printf.sprintf "expected %S" s)

let eat_kw st s =
  if is_kw st s then advance st
  else perr st (Printf.sprintf "expected keyword %S" s)

let eat_ident st =
  match (cur st).tk with
  | T_ident s ->
      advance st;
      s
  | _ -> perr st "expected identifier"

(* --- types --- *)

let rec parse_array_suffix st base =
  if is_punct st "[" && (peek st 1).tk = T_punct "]" then begin
    advance st;
    advance st;
    parse_array_suffix st (St_array base)
  end
  else base

(* A type: int / boolean / ClassName, with [] suffixes. *)
let parse_type st =
  let base =
    if is_kw st "int" then (
      advance st;
      St_int)
    else if is_kw st "boolean" then (
      advance st;
      St_bool)
    else St_class (eat_ident st)
  in
  parse_array_suffix st base

(* Does a type start at offset [n]?  Used to disambiguate declarations from
   expression statements: [Foo x = ...] vs [x = ...]. *)
let looks_like_decl st =
  match (cur st).tk with
  | T_kw ("int" | "boolean") -> true
  | T_ident _ -> (
      match (peek st 1).tk with
      | T_ident _ -> true (* Foo x *)
      | T_punct "[" -> (peek st 2).tk = T_punct "]" (* Foo[] x *)
      | _ -> false)
  | _ -> false

(* --- expressions --- *)

let rec parse_expr st : expr = parse_assign st

and parse_assign st =
  let lhs = parse_or st in
  if is_punct st "=" then begin
    let p = (cur st).tpos in
    advance st;
    let rhs = parse_assign st in
    { e = E_assign (lhs, rhs); epos = p }
  end
  else lhs

and parse_or st =
  let rec go acc =
    if is_punct st "||" then begin
      let p = (cur st).tpos in
      advance st;
      let r = parse_and st in
      go { e = E_binop ("||", acc, r); epos = p }
    end
    else acc
  in
  go (parse_and st)

and parse_and st =
  let rec go acc =
    if is_punct st "&&" then begin
      let p = (cur st).tpos in
      advance st;
      let r = parse_eq st in
      go { e = E_binop ("&&", acc, r); epos = p }
    end
    else acc
  in
  go (parse_eq st)

and parse_eq st =
  let rec go acc =
    match (cur st).tk with
    | T_punct (("==" | "!=") as op) ->
        let p = (cur st).tpos in
        advance st;
        let r = parse_rel st in
        go { e = E_binop (op, acc, r); epos = p }
    | _ -> acc
  in
  go (parse_rel st)

and parse_rel st =
  let lhs = parse_add st in
  match (cur st).tk with
  | T_punct (("<" | "<=" | ">" | ">=") as op) ->
      let p = (cur st).tpos in
      advance st;
      let r = parse_add st in
      { e = E_binop (op, lhs, r); epos = p }
  | T_kw "instanceof" ->
      let p = (cur st).tpos in
      advance st;
      let c = eat_ident st in
      { e = E_instanceof (lhs, c); epos = p }
  | _ -> lhs

and parse_add st =
  let rec go acc =
    match (cur st).tk with
    | T_punct (("+" | "-") as op) ->
        let p = (cur st).tpos in
        advance st;
        let r = parse_mul st in
        go { e = E_binop (op, acc, r); epos = p }
    | _ -> acc
  in
  go (parse_mul st)

and parse_mul st =
  let rec go acc =
    match (cur st).tk with
    | T_punct (("*" | "/" | "%") as op) ->
        let p = (cur st).tpos in
        advance st;
        let r = parse_unary st in
        go { e = E_binop (op, acc, r); epos = p }
    | _ -> acc
  in
  go (parse_unary st)

and parse_unary st =
  let p = (cur st).tpos in
  if is_punct st "!" then begin
    advance st;
    { e = E_unop ("!", parse_unary st); epos = p }
  end
  else if is_punct st "-" then begin
    advance st;
    { e = E_unop ("-", parse_unary st); epos = p }
  end
  else if
    (* cast: "(" ClassName ")" followed by something that starts a unary
       expression other than an operator *)
    is_punct st "("
    && (match (peek st 1).tk with T_ident _ -> true | _ -> false)
    && (peek st 2).tk = T_punct ")"
    && (match (peek st 3).tk with
       | T_ident _ | T_int _ | T_string _ -> true
       | T_kw ("this" | "new" | "null" | "true" | "false") -> true
       | T_punct "(" -> true
       | _ -> false)
  then begin
    advance st;
    let c = eat_ident st in
    eat_punct st ")";
    { e = E_cast (c, parse_unary st); epos = p }
  end
  else parse_postfix st

and parse_postfix st =
  let rec go acc =
    if is_punct st "." then begin
      let p = (cur st).tpos in
      advance st;
      let name = eat_ident st in
      if is_punct st "(" then begin
        let args = parse_args st in
        go { e = E_call (Some acc, name, args); epos = p }
      end
      else go { e = E_field (acc, name); epos = p }
    end
    else if is_punct st "[" then begin
      let p = (cur st).tpos in
      advance st;
      let idx = parse_expr st in
      eat_punct st "]";
      go { e = E_index (acc, idx); epos = p }
    end
    else acc
  in
  go (parse_primary st)

and parse_args st =
  eat_punct st "(";
  if is_punct st ")" then begin
    advance st;
    []
  end
  else begin
    let rec go acc =
      let e = parse_expr st in
      if is_punct st "," then begin
        advance st;
        go (e :: acc)
      end
      else begin
        eat_punct st ")";
        List.rev (e :: acc)
      end
    in
    go []
  end

and parse_primary st =
  let p = (cur st).tpos in
  match (cur st).tk with
  | T_int i ->
      advance st;
      { e = E_int i; epos = p }
  | T_string s ->
      advance st;
      { e = E_str s; epos = p }
  | T_kw "true" ->
      advance st;
      { e = E_bool true; epos = p }
  | T_kw "false" ->
      advance st;
      { e = E_bool false; epos = p }
  | T_kw "null" ->
      advance st;
      { e = E_null; epos = p }
  | T_kw "this" ->
      advance st;
      { e = E_this; epos = p }
  | T_kw "new" ->
      advance st;
      let base =
        if is_kw st "int" then (
          advance st;
          St_int)
        else if is_kw st "boolean" then (
          advance st;
          St_bool)
        else St_class (eat_ident st)
      in
      if is_punct st "(" then begin
        match base with
        | St_class c ->
            let args = parse_args st in
            { e = E_new (c, args); epos = p }
        | _ -> perr st "cannot construct a primitive"
      end
      else if is_punct st "[" then begin
        advance st;
        let len = parse_expr st in
        eat_punct st "]";
        (* trailing "[]" pairs make the element type an array *)
        let elem = parse_array_suffix st base in
        { e = E_new_array (elem, len); epos = p }
      end
      else perr st "expected ( or [ after new"
  | T_ident name ->
      advance st;
      if is_punct st "(" then begin
        let args = parse_args st in
        { e = E_call (None, name, args); epos = p }
      end
      else { e = E_name name; epos = p }
  | T_punct "(" ->
      advance st;
      let e = parse_expr st in
      eat_punct st ")";
      e
  | _ -> perr st "expected expression"

(* --- statements --- *)

let rec parse_stmt st : stmt =
  let p = (cur st).tpos in
  if is_punct st "{" then begin
    advance st;
    let body = parse_stmts st in
    eat_punct st "}";
    S_block body
  end
  else if is_kw st "if" then begin
    advance st;
    eat_punct st "(";
    let c = parse_expr st in
    eat_punct st ")";
    let then_ = parse_stmt st in
    if is_kw st "else" then begin
      advance st;
      let else_ = parse_stmt st in
      S_if (c, then_, Some else_)
    end
    else S_if (c, then_, None)
  end
  else if is_kw st "while" then begin
    advance st;
    eat_punct st "(";
    let c = parse_expr st in
    eat_punct st ")";
    S_while (c, parse_stmt st)
  end
  else if is_kw st "for" then begin
    advance st;
    eat_punct st "(";
    let init =
      if is_punct st ";" then None
      else if looks_like_decl st then begin
        let ty = parse_type st in
        let name = eat_ident st in
        let init =
          if is_punct st "=" then begin
            advance st;
            Some (parse_expr st)
          end
          else None
        in
        Some (S_var (ty, name, init, p))
      end
      else Some (S_expr (parse_expr st))
    in
    eat_punct st ";";
    let cond = if is_punct st ";" then None else Some (parse_expr st) in
    eat_punct st ";";
    let step = if is_punct st ")" then None else Some (parse_expr st) in
    eat_punct st ")";
    S_for (init, cond, step, parse_stmt st)
  end
  else if is_kw st "return" then begin
    advance st;
    if is_punct st ";" then begin
      advance st;
      S_return (None, p)
    end
    else begin
      let e = parse_expr st in
      eat_punct st ";";
      S_return (Some e, p)
    end
  end
  else if is_kw st "break" then begin
    advance st;
    eat_punct st ";";
    S_break p
  end
  else if is_kw st "continue" then begin
    advance st;
    eat_punct st ";";
    S_continue p
  end
  else if is_kw st "super" then begin
    advance st;
    let args = parse_args st in
    eat_punct st ";";
    S_super (args, p)
  end
  else if looks_like_decl st then begin
    let ty = parse_type st in
    let name = eat_ident st in
    let init =
      if is_punct st "=" then begin
        advance st;
        Some (parse_expr st)
      end
      else None
    in
    eat_punct st ";";
    S_var (ty, name, init, p)
  end
  else begin
    let e = parse_expr st in
    eat_punct st ";";
    S_expr e
  end

and parse_stmts st =
  let rec go acc =
    if is_punct st "}" then List.rev acc else go (parse_stmt st :: acc)
  in
  go []

(* --- declarations --- *)

let parse_modifiers st =
  let m = ref default_mods in
  let continue_ = ref true in
  while !continue_ do
    match (cur st).tk with
    | T_kw "public" ->
        advance st;
        m := { !m with m_vis = Jv_classfile.Access.Public }
    | T_kw "private" ->
        advance st;
        m := { !m with m_vis = Jv_classfile.Access.Private }
    | T_kw "protected" ->
        advance st;
        m := { !m with m_vis = Jv_classfile.Access.Protected }
    | T_kw "static" ->
        advance st;
        m := { !m with m_static = true }
    | T_kw "final" ->
        advance st;
        m := { !m with m_final = true }
    | T_kw "native" ->
        advance st;
        m := { !m with m_native = true }
    | _ -> continue_ := false
  done;
  !m

let parse_params st =
  eat_punct st "(";
  if is_punct st ")" then begin
    advance st;
    []
  end
  else begin
    let rec go acc =
      let ty = parse_type st in
      let name = eat_ident st in
      if is_punct st "," then begin
        advance st;
        go ((ty, name) :: acc)
      end
      else begin
        eat_punct st ")";
        List.rev ((ty, name) :: acc)
      end
    in
    go []
  end

let parse_member st ~class_name : [ `Field of field_decl | `Meth of method_decl ]
    =
  let p = (cur st).tpos in
  let mods = parse_modifiers st in
  (* constructor: ClassName "(" with no leading return type *)
  if
    (match (cur st).tk with
    | T_ident n -> String.equal n class_name
    | _ -> false)
    && (peek st 1).tk = T_punct "("
  then begin
    let _ = eat_ident st in
    let params = parse_params st in
    eat_punct st "{";
    let body = parse_stmts st in
    eat_punct st "}";
    `Meth
      {
        md_mods = mods;
        md_ret = St_void;
        md_name = Jv_classfile.Cls.ctor_name;
        md_params = params;
        md_body = Some body;
        md_is_ctor = true;
        md_pos = p;
      }
  end
  else begin
    let ret =
      if is_kw st "void" then (
        advance st;
        St_void)
      else parse_type st
    in
    let name = eat_ident st in
    if is_punct st "(" then begin
      let params = parse_params st in
      let body =
        if is_punct st ";" then begin
          advance st;
          if not mods.m_native then
            perr st "non-native method must have a body";
          None
        end
        else begin
          eat_punct st "{";
          let b = parse_stmts st in
          eat_punct st "}";
          Some b
        end
      in
      `Meth
        {
          md_mods = mods;
          md_ret = ret;
          md_name = name;
          md_params = params;
          md_body = body;
          md_is_ctor = false;
          md_pos = p;
        }
    end
    else begin
      if ret = St_void then perr st "field cannot have type void";
      let init =
        if is_punct st "=" then begin
          advance st;
          Some (parse_expr st)
        end
        else None
      in
      eat_punct st ";";
      `Field
        { f_mods = mods; f_ty = ret; f_name = name; f_init = init; f_pos = p }
    end
  end

let parse_class st : class_decl =
  let p = (cur st).tpos in
  eat_kw st "class";
  let name = eat_ident st in
  let super =
    if is_kw st "extends" then begin
      advance st;
      Some (eat_ident st)
    end
    else None
  in
  eat_punct st "{";
  let fields = ref [] and methods = ref [] in
  while not (is_punct st "}") do
    match parse_member st ~class_name:name with
    | `Field f -> fields := f :: !fields
    | `Meth m -> methods := m :: !methods
  done;
  eat_punct st "}";
  {
    cd_name = name;
    cd_super = super;
    cd_fields = List.rev !fields;
    cd_methods = List.rev !methods;
    cd_pos = p;
  }

let parse_program (src : string) : program =
  let toks = Array.of_list (Lexer.tokenize src) in
  let st = { toks; k = 0 } in
  let rec go acc =
    if (cur st).tk = T_eof then List.rev acc else go (parse_class st :: acc)
  in
  go []
