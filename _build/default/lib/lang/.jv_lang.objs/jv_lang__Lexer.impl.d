lib/lang/lexer.ml: Ast Buffer List Printf String
