lib/lang/compile.ml: Ast Codegen Jv_classfile Lexer List Parser Printf String Typecheck
