lib/lang/ast.ml: Jv_classfile Printf
