lib/lang/parser.ml: Array Ast Jv_classfile Lexer List Printf String
