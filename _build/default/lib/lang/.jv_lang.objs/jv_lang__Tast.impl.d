lib/lang/tast.ml: Jv_classfile List
