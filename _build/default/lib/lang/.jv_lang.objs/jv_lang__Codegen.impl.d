lib/lang/codegen.ml: Array Jv_classfile List Tast
