lib/lang/typecheck.ml: Ast Hashtbl Jv_classfile List Option Printf String Tast
