(* Abstract syntax for MiniJava, the source language of programs that run
   on the VM.  It is the Java subset the paper's benchmark programs
   exercise: classes with single inheritance, instance/static fields and
   methods, constructors, access modifiers, final fields, arrays, strings,
   and the builtin native facades (Sys, Net, Thread, Jvolve). *)

type pos = { line : int; col : int }

let no_pos = { line = 0; col = 0 }
let pos_to_string p = Printf.sprintf "line %d, col %d" p.line p.col

(* Source-level types.  [St_class] covers String and user classes. *)
type sty = St_int | St_bool | St_void | St_class of string | St_array of sty

let rec sty_to_string = function
  | St_int -> "int"
  | St_bool -> "boolean"
  | St_void -> "void"
  | St_class c -> c
  | St_array t -> sty_to_string t ^ "[]"

type expr = { e : expr_kind; epos : pos }

and expr_kind =
  | E_int of int
  | E_bool of bool
  | E_str of string
  | E_null
  | E_this
  | E_name of string (* identifier: local, field, or class (resolved later) *)
  | E_field of expr * string (* e.f — also Class.f for statics *)
  | E_call of expr option * string * expr list
      (* receiver (None = bare call), method name, arguments *)
  | E_new of string * expr list
  | E_new_array of sty * expr (* element type, length *)
  | E_index of expr * expr
  | E_assign of expr * expr (* lvalue = rhs; statement position only *)
  | E_binop of string * expr * expr (* "+", "-", ... "&&", "||", "==", ... *)
  | E_unop of string * expr (* "!", "-" *)
  | E_cast of string * expr (* (ClassName) e *)
  | E_instanceof of expr * string

type stmt =
  | S_block of stmt list
  | S_if of expr * stmt * stmt option
  | S_while of expr * stmt
  | S_for of stmt option * expr option * expr option * stmt
  | S_return of expr option * pos
  | S_break of pos
  | S_continue of pos
  | S_var of sty * string * expr option * pos (* local declaration *)
  | S_expr of expr
  | S_super of expr list * pos (* super(args); first statement of a ctor *)

type modifiers = {
  m_vis : Jv_classfile.Access.visibility;
  m_static : bool;
  m_final : bool;
  m_native : bool;
}

let default_mods =
  { m_vis = Jv_classfile.Access.Public; m_static = false; m_final = false;
    m_native = false }

type field_decl = {
  f_mods : modifiers;
  f_ty : sty;
  f_name : string;
  f_init : expr option;
  f_pos : pos;
}

type method_decl = {
  md_mods : modifiers;
  md_ret : sty;
  md_name : string;
  md_params : (sty * string) list;
  md_body : stmt list option; (* None for native methods *)
  md_is_ctor : bool;
  md_pos : pos;
}

type class_decl = {
  cd_name : string;
  cd_super : string option;
  cd_fields : field_decl list;
  cd_methods : method_decl list;
  cd_pos : pos;
}

type program = class_decl list
